package telemetry_test

import (
	"testing"

	"beltway/internal/bench"
)

// Benchmark bodies live in beltway/internal/bench so `go test -bench`
// and the cmd/bench regression harness measure the same code.

func BenchmarkEmitEvent(b *testing.B)        { bench.TelemetryEmitEvent(b) }
func BenchmarkHistogramObserve(b *testing.B) { bench.TelemetryHistogramObserve(b) }
func BenchmarkCounterAdd(b *testing.B)       { bench.TelemetryCounterAdd(b) }
func BenchmarkGCCycleHooks(b *testing.B)     { bench.TelemetryGCCycleHooks(b) }
func BenchmarkCollection(b *testing.B)       { bench.TelemetryCollection(b) }
