package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
)

// TestMarkRegionMetricsFromHooks drives the Run's hooks the way a
// mark-region collection would and checks the substrate metrics land in
// the registry: marked-survivor counters from GCEnd, line-utilization
// gauges summed across the per-belt occupancy stream.
func TestMarkRegionMetricsFromHooks(t *testing.T) {
	r := NewRun(nil)
	hk := r.Hooks()
	hk.GCBegin(gc.GCBeginInfo{Trigger: gc.TriggerHeapFull, CondemnedBytes: 4096, OccupiedBytes: 8192})
	hk.GCEnd(gc.GCEndInfo{Duration: 100, BytesCopied: 256,
		MRObjectsMarked: 40, MRBytesMarked: 1600, MRFramesEvacuated: 2, SurvivorBytes: 2048})
	hk.Occupancy(gc.BeltStat{Belt: 0, Increments: 1, Bytes: 512, Frames: 1}) // copying: no lines
	hk.Occupancy(gc.BeltStat{Belt: 1, Increments: 2, Bytes: 1536, Frames: 2, MRLines: 64, MRLinesUsed: 24})

	m := r.Registry().Snapshot()
	if m.Counters[MetricMRObjectsMarked] != 40 || m.Counters[MetricMRBytesMarked] != 1600 {
		t.Errorf("marked counters wrong: %v", m.Counters)
	}
	if m.Counters[MetricMRFramesEvacuated] != 2 {
		t.Errorf("evacuated counter = %d, want 2", m.Counters[MetricMRFramesEvacuated])
	}
	if m.Gauges[MetricMRLines] != 64 || m.Gauges[MetricMRLinesUsed] != 24 {
		t.Errorf("line gauges wrong: %v", m.Gauges)
	}

	// A later collection that sweeps lines free must move the gauges,
	// not accumulate them.
	hk.GCEnd(gc.GCEndInfo{Duration: 50, MRObjectsMarked: 10, MRBytesMarked: 400})
	hk.Occupancy(gc.BeltStat{Belt: 1, Increments: 2, Bytes: 800, Frames: 2, MRLines: 64, MRLinesUsed: 13})
	m = r.Registry().Snapshot()
	if m.Counters[MetricMRObjectsMarked] != 50 {
		t.Errorf("marked counter after second GC = %d, want 50", m.Counters[MetricMRObjectsMarked])
	}
	if m.Gauges[MetricMRLines] != 64 || m.Gauges[MetricMRLinesUsed] != 13 {
		t.Errorf("line gauges after sweep wrong: %v", m.Gauges)
	}
}

// TestMarkRegionMetricsExport checks both export formats carry the
// substrate metrics: the Prometheus text exposition and the JSON
// snapshot round-trip the engine's checkpoints use.
func TestMarkRegionMetricsExport(t *testing.T) {
	r := NewRun(nil)
	hk := r.Hooks()
	hk.GCBegin(gc.GCBeginInfo{Trigger: gc.TriggerHeapFull})
	hk.GCEnd(gc.GCEndInfo{Duration: 10, MRObjectsMarked: 7, MRBytesMarked: 280, MRFramesEvacuated: 1})
	hk.Occupancy(gc.BeltStat{Belt: 0, MRLines: 32, MRLinesUsed: 9})

	var buf bytes.Buffer
	if err := r.Registry().WritePrometheus(&buf, `collector="Immix"`); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP markregion_objects_marked_total mark-region survivors marked in place",
		"# TYPE markregion_objects_marked_total counter",
		`markregion_objects_marked_total{collector="Immix"} 7`,
		`markregion_bytes_marked_total{collector="Immix"} 280`,
		`markregion_frames_evacuated_total{collector="Immix"} 1`,
		"# TYPE markregion_lines_total gauge",
		`markregion_lines_total{collector="Immix"} 32`,
		`markregion_lines_used{collector="Immix"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back RunSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics.Counters[MetricMRObjectsMarked] != 7 ||
		back.Metrics.Counters[MetricMRBytesMarked] != 280 ||
		back.Metrics.Gauges[MetricMRLinesUsed] != 9 {
		t.Errorf("JSON round trip lost mark-region metrics: %+v", back.Metrics)
	}

	// And through the fleet aggregator (which owns the HELP strings for
	// merged snapshots).
	a := NewAggregator()
	a.Add("Immix", r.Snapshot())
	buf.Reset()
	if err := a.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `markregion_lines_total{collector="Immix"} 32`) {
		t.Errorf("aggregator output missing mark-region gauge:\n%s", buf.String())
	}
}

// TestMarkRegionMetricsEndToEnd attaches a Run to a real Immix collector
// and checks a collection populates the substrate metrics without any
// hand-fed hook values.
func TestMarkRegionMetricsEndToEnd(t *testing.T) {
	types := heap.NewRegistry()
	h, err := core.New(collectors.Immix(collectors.Options{HeapBytes: 1 << 20, FrameBytes: 4096}), types)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRun(h.Clock())
	h.SetHooks(r.Hooks())
	node := types.DefineScalar("n", 2, 2)
	roots := h.Roots()
	for i := 0; i < 200; i++ {
		a, err := h.Alloc(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			roots.Add(a)
		}
	}
	if err := h.Collect(true); err != nil {
		t.Fatal(err)
	}
	m := r.Registry().Snapshot()
	if m.Counters[MetricMRObjectsMarked] == 0 {
		t.Error("no objects marked in place by a real Immix collection")
	}
	if m.Gauges[MetricMRLines] == 0 || m.Gauges[MetricMRLinesUsed] == 0 {
		t.Errorf("line gauges not fed by a real collection: %v", m.Gauges)
	}
	if m.Gauges[MetricMRLinesUsed] > m.Gauges[MetricMRLines] {
		t.Errorf("used lines %v exceed total lines %v", m.Gauges[MetricMRLinesUsed], m.Gauges[MetricMRLines])
	}
}

// The occupancy hook now maintains per-belt line sums; it must stay
// allocation-free in steady state (belts are discovered during warm-up).
func TestMarkRegionOccupancyZeroAlloc(t *testing.T) {
	r := NewRun(nil)
	hk := r.Hooks()
	b0 := gc.BeltStat{Belt: 0, Increments: 1, Bytes: 512, Frames: 1}
	b1 := gc.BeltStat{Belt: 1, Increments: 2, Bytes: 1024, Frames: 2, MRLines: 64, MRLinesUsed: 20}
	if n := testing.AllocsPerRun(1000, func() {
		hk.Occupancy(b0)
		hk.Occupancy(b1)
	}); n != 0 {
		t.Errorf("Occupancy with mark-region stats allocates %v/op", n)
	}
}
