package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMetricEmission hammers one shared Registry's counters,
// gauges and histograms from N goroutines. Run under -race (CI does)
// this proves the metric primitives are safe for concurrent shard
// emission; the value assertions prove no increments were lost.
func TestConcurrentMetricEmission(t *testing.T) {
	const goroutines = 8
	const perG = 5000

	reg := NewRegistry()
	ctr := reg.NewCounter("race_ops_total", "ops")
	gauge := reg.NewGauge("race_level", "level")
	hist := reg.NewHistogram("race_cost", "cost")

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctr.Inc()
				ctr.Add(2)
				gauge.Set(float64(g*perG + i))
				hist.Observe(float64(i % 512))
			}
		}()
	}
	wg.Wait()

	if got, want := ctr.Value(), uint64(goroutines*perG*3); got != want {
		t.Fatalf("counter lost increments: %d, want %d", got, want)
	}
	if got, want := hist.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("histogram lost observations: %d, want %d", got, want)
	}
	if max := hist.Max(); max != 511 {
		t.Fatalf("histogram max %v, want 511", max)
	}
	snap := reg.Snapshot()
	if snap.Counters["race_ops_total"] != uint64(goroutines*perG*3) {
		t.Fatalf("snapshot counter %d", snap.Counters["race_ops_total"])
	}
}

// TestConcurrentSnapshotWhileEmitting snapshots a Registry from one
// goroutine while 8 others hammer its metrics — the pattern of a live
// HTTP metrics endpoint scraping mid-run. Registration itself is
// single-owner by design (duplicate names panic), so each goroutine
// gets its own pre-registered counter.
func TestConcurrentSnapshotWhileEmitting(t *testing.T) {
	reg := NewRegistry()
	ctrs := make([]*Counter, 8)
	for g := range ctrs {
		ctrs[g] = reg.NewCounter(fmt.Sprintf("race_g%d_total", g), "c")
	}
	hist := reg.NewHistogram("race_snapshot_cost", "cost")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ctrs[g].Inc()
				hist.Observe(float64(i))
				if i%256 == 0 {
					_ = reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	total := uint64(0)
	for _, v := range snap.Counters {
		total += v
	}
	if total != 8*2000 {
		t.Fatalf("lost counter increments: %d, want %d", total, 8*2000)
	}
	if snap.Histograms["race_snapshot_cost"].Count != 8*2000 {
		t.Fatalf("lost observations: %d", snap.Histograms["race_snapshot_cost"].Count)
	}
}

// TestAggregatorCommutativity proves the shard-merge algebra: N
// goroutines each emit a private Run's worth of metrics into an
// Aggregator concurrently, and the aggregate equals the same snapshots
// merged serially in every rotation of the order — counters add,
// gauges max, histograms add, independent of arrival order.
func TestAggregatorCommutativity(t *testing.T) {
	const shards = 6
	snaps := make([]*RegistrySnapshot, shards)
	for i := range snaps {
		reg := NewRegistry()
		reg.NewCounter("ops_total", "x").Add(uint64(100 + i))
		reg.NewGauge("level", "x").Set(float64(i * 10))
		h := reg.NewHistogram("cost", "x")
		for j := 0; j <= i; j++ {
			h.Observe(float64(j))
		}
		snaps[i] = reg.Snapshot()
	}

	merge := func(order []int) *RegistrySnapshot {
		out := &RegistrySnapshot{}
		for _, i := range order {
			out.Merge(snaps[i])
		}
		return out
	}
	ref := merge([]int{0, 1, 2, 3, 4, 5})
	for rot := 1; rot < shards; rot++ {
		order := make([]int, shards)
		for i := range order {
			order[i] = (i + rot) % shards
		}
		got := merge(order)
		if got.Counters["ops_total"] != ref.Counters["ops_total"] {
			t.Fatalf("rotation %d: counters %d != %d", rot, got.Counters["ops_total"], ref.Counters["ops_total"])
		}
		if got.Gauges["level"] != ref.Gauges["level"] {
			t.Fatalf("rotation %d: gauges %v != %v", rot, got.Gauges["level"], ref.Gauges["level"])
		}
		if got.Histograms["cost"].Count != ref.Histograms["cost"].Count ||
			got.Histograms["cost"].Sum != ref.Histograms["cost"].Sum {
			t.Fatalf("rotation %d: histograms diverge", rot)
		}
	}

	// Concurrent Aggregator feeding: same result as any serial order.
	agg := NewAggregator()
	var wg sync.WaitGroup
	for i := range snaps {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			agg.Add("collector", &RunSnapshot{Metrics: snaps[i]})
		}()
	}
	wg.Wait()
	got := agg.Snapshot()["collector"]
	if got.Counters["ops_total"] != ref.Counters["ops_total"] ||
		got.Gauges["level"] != ref.Gauges["level"] ||
		got.Histograms["cost"].Count != ref.Histograms["cost"].Count {
		t.Fatalf("concurrent aggregate diverges from serial merge:\n got %+v\n ref %+v", got, ref)
	}
}
