package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Aggregator merges RunSnapshots across runs, keyed by collector name.
// Counters and histogram buckets add and gauges keep their maximum, so
// the aggregate is independent of merge order — a parallel sweep and a
// serial one produce identical aggregates. Safe for concurrent Add (the
// engine commits results from worker goroutines).
type Aggregator struct {
	mu   sync.Mutex
	by   map[string]*RegistrySnapshot
	help map[string]string
}

// NewAggregator returns an empty aggregator. The standard Run metric
// help strings are pre-registered for Prometheus HELP lines.
func NewAggregator() *Aggregator {
	return &Aggregator{
		by: map[string]*RegistrySnapshot{},
		help: map[string]string{
			MetricCollections:     "collections performed",
			MetricFullCollections: "collections condemning the whole occupied heap",
			MetricPauseCost:       "stop-the-world pause cost per collection, in cost units",
			MetricCopiedBytes:     "bytes evacuated per collection",
			MetricRemsetEntries:   "remembered-set entries examined per collection",
			MetricBarrierSlow:     "write-barrier slow paths taken",
			MetricCondemnedBytes:  "bytes condemned across all collections",
			MetricFlips:           "older-first belt flips",
			MetricOOMs:            "out-of-memory events",
			MetricOccupiedBytes:   "collected-space occupancy after the last collection",

			MetricMRObjectsMarked:   "mark-region survivors marked in place",
			MetricMRBytesMarked:     "bytes of mark-region survivors marked in place",
			MetricMRFramesEvacuated: "sparse mark-region frames defragmented through the copy path",
			MetricMRLines:           "lines on mark-region belts after the last collection",
			MetricMRLinesUsed:       "used lines on mark-region belts after the last collection",
		},
	}
}

// Add merges snapshot s (from one run of the named collector
// configuration) into the aggregate. Nil snapshots are ignored.
func (a *Aggregator) Add(collector string, s *RunSnapshot) {
	if s == nil || s.Metrics == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur, ok := a.by[collector]
	if !ok {
		cur = &RegistrySnapshot{}
		a.by[collector] = cur
	}
	cur.Merge(s.Metrics)
}

// Collectors returns the collector names seen so far, sorted.
func (a *Aggregator) Collectors() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.by))
	for k := range a.by {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a deep copy of the aggregate per collector.
func (a *Aggregator) Snapshot() map[string]*RegistrySnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]*RegistrySnapshot, len(a.by))
	for k, v := range a.by {
		cp := &RegistrySnapshot{}
		cp.Merge(v)
		out[k] = cp
	}
	return out
}

// WritePrometheus renders the aggregate in Prometheus text exposition
// format, one sample set per collector with a collector="..." label.
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	snap := a.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePrometheus(w, snap[name], `collector="`+promEscape(name)+`"`, a.help); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the aggregate as a JSON object keyed by collector.
func (a *Aggregator) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Snapshot())
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			out = append(out, '\\', c)
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Handler serves the aggregate over HTTP: Prometheus text at /metrics
// (and /), JSON at /metrics.json.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = a.WriteJSON(w)
	})
	serveText := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = a.WritePrometheus(w)
	}
	mux.HandleFunc("/metrics", serveText)
	mux.HandleFunc("/", serveText)
	return mux
}
