package telemetry

import (
	"fmt"
	"math"
)

// Policy metric names (internal/policy adaptive controller). The
// decision counter is fixed; knob-value gauges are registered on first
// sight of each (knob, belt) pair, named
// "policy_knob_<knob>" for global knobs and
// "policy_knob_<knob>_belt<N>" for per-belt ones.
const MetricPolicyDecisions = "policy_decisions_total"

// PolicyObserver feeds a Run's registry and flight recorder with
// adaptive-controller decisions. It satisfies policy.Emitter
// structurally (the policy package defines the interface; neither
// package imports the other). Like every observer it never advances the
// clock: decision emission reads values the controller already computed.
type PolicyObserver struct {
	run       *Run
	decisions *Counter
	knobs     map[string]*Gauge
}

// PolicyObserver lazily registers the policy metric set on the run's
// registry and returns the observer (idempotent per Run).
func (r *Run) PolicyObserver() *PolicyObserver {
	if r.policy == nil {
		r.policy = &PolicyObserver{
			run:       r,
			decisions: r.reg.NewCounter(MetricPolicyDecisions, "adaptive policy decisions made"),
			knobs:     make(map[string]*Gauge),
		}
	}
	return r.policy
}

// Decision records one controller decision (policy.Emitter). Knob and
// reason arrive as their numeric ids; belt is -1 for global knobs.
func (o *PolicyObserver) Decision(gcOrdinal uint64, now float64, reason, knob, belt int, value float64) {
	o.decisions.Inc()
	if knob != 0 {
		name := "policy_knob_" + policyKnobName(uint8(knob))
		if belt >= 0 {
			name = fmt.Sprintf("%s_belt%d", name, belt)
		}
		g, ok := o.knobs[name]
		if !ok {
			g = o.run.reg.NewGauge(name, "adaptive policy knob value")
			o.knobs[name] = g
		}
		g.Set(value)
	}
	beltByte := uint64(0)
	if belt >= 0 {
		beltByte = uint64(belt+1) & 0xff
	}
	o.run.rec.Emit(Event{
		Kind: EvPolicy, Time: now, GC: gcOrdinal,
		A: uint64(knob)&0xff | beltByte<<8 | (uint64(reason)&0xff)<<24,
		B: math.Float64bits(value),
	})
}

// PolicyDecisions returns the snapshot's decision count (0 when the run
// had no controller).
func (s *RunSnapshot) PolicyDecisions() uint64 {
	if s == nil || s.Metrics == nil {
		return 0
	}
	return s.Metrics.Counters[MetricPolicyDecisions]
}
