package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"beltway/internal/gc"
)

func TestFlightRecorderWrap(t *testing.T) {
	r := NewFlightRecorder(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvFlip, A: uint64(i)})
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		wantSeq := uint64(7 + i) // oldest retained is the 7th emission
		if e.Seq != wantSeq || e.A != wantSeq-1 {
			t.Errorf("event %d: seq=%d A=%d, want seq=%d A=%d", i, e.Seq, e.A, wantSeq, wantSeq-1)
		}
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Seq != 9 || last[1].Seq != 10 {
		t.Errorf("Last(2) = %+v, want seqs 9,10", last)
	}
	if got := r.Last(100); len(got) != 4 {
		t.Errorf("Last(100) returned %d events, want 4", len(got))
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	r := NewFlightRecorder(0)
	if r.Cap() != DefaultRecorderCap {
		t.Errorf("Cap = %d, want %d", r.Cap(), DefaultRecorderCap)
	}
	if r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Error("fresh recorder is not empty")
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {1, 0},
		{1.5, 1}, {2, 1},
		{2.5, 2}, {3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{1024, 10}, {1025, 11},
		{math.MaxFloat64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
		// The defining property: v <= bound(idx) and (idx == 0 or v > bound(idx-1)).
		if c.v > 0 && c.v < math.MaxFloat64 {
			idx := bucketIndex(c.v)
			if c.v > bucketBound(idx) {
				t.Errorf("v=%v above its bucket bound %v", c.v, bucketBound(idx))
			}
			if idx > 0 && c.v <= bucketBound(idx-1) {
				t.Errorf("v=%v fits the previous bucket (bound %v)", c.v, bucketBound(idx-1))
			}
		}
	}
	if !math.IsInf(bucketBound(histBuckets-1), 1) {
		t.Error("overflow bucket bound is not +Inf")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	vals := []float64{1, 3, 7, 100, 1000, -2}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 1111 { // -2 clamps to 0
		t.Errorf("Sum = %v, want 1111", h.Sum())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %v, want 1000", h.Max())
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %v, want exact max", got)
	}
	// Quantiles are monotone in q and within [0, max].
	prev := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev-1e-9 {
			t.Errorf("Quantile(%v)=%v below Quantile at lower q (%v)", q, v, prev)
		}
		if v < 0 || v > 1000 {
			t.Errorf("Quantile(%v)=%v out of range", q, v)
		}
		prev = v
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramMergeCommutative(t *testing.T) {
	mk := func(vals ...float64) *HistogramSnapshot {
		h := &Histogram{}
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	a1, b1 := mk(1, 5, 9, 300), mk(2, 2, 1e9)
	a2, b2 := mk(1, 5, 9, 300), mk(2, 2, 1e9)
	a1.Merge(b1)
	b2.Merge(a2)
	if !reflect.DeepEqual(a1, b2) {
		t.Errorf("merge not commutative:\n%+v\n%+v", a1, b2)
	}
	if a1.Count != 7 {
		t.Errorf("merged count %d, want 7", a1.Count)
	}
	if a1.Max != 1e9 {
		t.Errorf("merged max %v, want 1e9", a1.Max)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("x", "")
}

func TestRegistrySnapshotMerge(t *testing.T) {
	a := &RegistrySnapshot{
		Counters: map[string]uint64{"c": 3},
		Gauges:   map[string]float64{"g": 5},
	}
	b := &RegistrySnapshot{
		Counters: map[string]uint64{"c": 4, "c2": 1},
		Gauges:   map[string]float64{"g": 2, "g2": 7},
	}
	a.Merge(b)
	if a.Counters["c"] != 7 || a.Counters["c2"] != 1 {
		t.Errorf("counter merge wrong: %v", a.Counters)
	}
	if a.Gauges["g"] != 5 || a.Gauges["g2"] != 7 {
		t.Errorf("gauge merge should keep max: %v", a.Gauges)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("gc_total", "collections")
	g := r.NewGauge("occupied", "bytes")
	h := r.NewHistogram("pause", "pause cost")
	c.Add(5)
	g.Set(123.5)
	for _, v := range []float64{1, 2, 3, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, `collector="BSS"`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP gc_total collections",
		"# TYPE gc_total counter",
		`gc_total{collector="BSS"} 5`,
		"# TYPE occupied gauge",
		`occupied{collector="BSS"} 123.5`,
		"# TYPE pause histogram",
		`pause_bucket{collector="BSS",le="+Inf"} 4`,
		`pause_sum{collector="BSS"} 1006`,
		`pause_count{collector="BSS"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at count.
	var prevCum uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "pause_bucket") {
			continue
		}
		var n uint64
		if _, err := fmtSscanLast(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prevCum {
			t.Errorf("bucket series decreases at %q", line)
		}
		prevCum = n
	}
	if prevCum != 4 {
		t.Errorf("final cumulative bucket %d, want 4", prevCum)
	}
}

// fmtSscanLast parses the trailing integer of a prometheus sample line.
func fmtSscanLast(line string, n *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	return 1, json.Unmarshal([]byte(line[i+1:]), n)
}

func TestRunSnapshotJSONRoundTrip(t *testing.T) {
	h := &Histogram{}
	h.Observe(5)
	h.Observe(700)
	s := &RunSnapshot{
		Events: []Event{
			{Kind: EvGCBegin, Seq: 1, Time: 100, GC: 1, A: 1, B: 2, C: 3, D: 4},
			{Kind: EvGCEnd, Seq: 2, Time: 200, Dur: 100, GC: 1, A: 9},
		},
		DroppedEvents: 7,
		Metrics: &RegistrySnapshot{
			Counters:   map[string]uint64{"c": 1},
			Gauges:     map[string]float64{"g": 2.5},
			Histograms: map[string]*HistogramSnapshot{"h": h.Snapshot()},
		},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, &back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", s, &back)
	}
}

// syntheticEvents is a plausible two-collection event stream for the
// renderer tests.
func syntheticEvents() []Event {
	return []Event{
		{Kind: EvGCBegin, Seq: 1, Time: 1000, GC: 1, A: 1, B: 2, C: 4096, D: 8192},
		{Kind: EvCondemned, Seq: 2, Time: 1000, GC: 1, A: 0, B: 3, C: 2048, D: 1},
		{Kind: EvCondemned, Seq: 3, Time: 1000, GC: 1, A: 0, B: 4 | 2<<32, C: 2048, D: 1},
		{Kind: EvGCEnd, Seq: 4, Time: 2000, Dur: 1000, GC: 1, A: 1024, B: 10, C: 3, D: 5},
		{Kind: EvBelt, Seq: 5, Time: 2000, GC: 1, A: 0, B: 1, C: 2048, D: 1},
		{Kind: EvBelt, Seq: 6, Time: 2000, GC: 1, A: 1, B: 2, C: 4096, D: 2},
		{Kind: EvFlip, Seq: 7, Time: 2500, A: 1, B: 12},
		{Kind: EvGCBegin, Seq: 8, Time: 3000, GC: 2, A: 4 | 1<<8, B: 3, C: 8192, D: 8192},
		{Kind: EvGCEnd, Seq: 9, Time: 4000, Dur: 1000, GC: 2, A: 2048, B: 20, C: 0, D: 0},
		{Kind: EvOOM, Seq: 10, Time: 5000, A: 64, B: 1 << 20},
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []TraceRun{
		{Name: "BSS / jess", Pid: 1, Events: syntheticEvents()},
		{Name: "BA2 / jess", Pid: 2, Events: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, metas, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
			if e["dur"].(float64) <= 0 {
				t.Errorf("slice with non-positive dur: %v", e)
			}
			if e["ts"].(float64) < 0 {
				t.Errorf("slice with negative ts: %v", e)
			}
		case "M":
			metas++
		case "i":
			instants++
		}
	}
	if slices != 2 {
		t.Errorf("got %d GC slices, want 2", slices)
	}
	if metas != 2 {
		t.Errorf("got %d process metadata events, want 2", metas)
	}
	if instants != 2 { // flip + OOM
		t.Errorf("got %d instants, want 2", instants)
	}
}

func TestTimelineRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, "BSS / jess", syntheticEvents()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BSS / jess", "gc", "heap-full", "forced-full!", "flip", "OOM", "belt"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if err := WriteTimeline(&buf, "empty", nil); err != nil {
		t.Errorf("empty event stream should render: %v", err)
	}
}

func TestEventString(t *testing.T) {
	for _, e := range syntheticEvents() {
		if s := e.String(); s == "" || !strings.Contains(s, "#") {
			t.Errorf("Event.String for %v rendered %q", e.Kind, s)
		}
	}
	if s := (Event{Kind: EvCondemned, B: 4 | 2<<32}).String(); !strings.Contains(s, "train1") {
		t.Errorf("condemned event lost its train: %q", s)
	}
	if s := (Event{Kind: EvGCBegin, A: 4 | 1<<8}).String(); !strings.Contains(s, "full") {
		t.Errorf("full gc-begin lost its flag: %q", s)
	}
}

func TestAggregator(t *testing.T) {
	run := func(pause float64) *RunSnapshot {
		h := &Histogram{}
		h.Observe(pause)
		return &RunSnapshot{Metrics: &RegistrySnapshot{
			Counters:   map[string]uint64{MetricCollections: 1},
			Histograms: map[string]*HistogramSnapshot{MetricPauseCost: h.Snapshot()},
		}}
	}
	a := NewAggregator()
	a.Add("BSS", run(10))
	a.Add("BSS", run(30))
	a.Add("BA2", run(20))
	if got := a.Collectors(); len(got) != 2 {
		t.Fatalf("Collectors = %v", got)
	}
	snap := a.Snapshot()
	if snap["BSS"].Counters[MetricCollections] != 2 {
		t.Errorf("BSS collections = %d, want 2", snap["BSS"].Counters[MetricCollections])
	}
	if snap["BSS"].Histograms[MetricPauseCost].Count != 2 {
		t.Error("BSS pause histogram not merged")
	}
	var buf bytes.Buffer
	if err := a.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`collector="BSS"`, `collector="BA2"`, "gc_pause_cost_units_bucket"} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregated prometheus missing %q", want)
		}
	}
	buf.Reset()
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]*RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("aggregator JSON invalid: %v", err)
	}
	if len(doc) != 2 {
		t.Errorf("aggregator JSON has %d collectors, want 2", len(doc))
	}
}

func TestAggregatorSnapshotIsolated(t *testing.T) {
	a := NewAggregator()
	h := &Histogram{}
	h.Observe(1)
	a.Add("X", &RunSnapshot{Metrics: &RegistrySnapshot{
		Counters:   map[string]uint64{"c": 1},
		Histograms: map[string]*HistogramSnapshot{"h": h.Snapshot()},
	}})
	s1 := a.Snapshot()
	s1["X"].Counters["c"] = 99
	s1["X"].Histograms["h"].Count = 99
	s2 := a.Snapshot()
	if s2["X"].Counters["c"] != 1 || s2["X"].Histograms["h"].Count != 1 {
		t.Error("Snapshot shares state with the aggregator")
	}
}

// TestHooksFeedRunEndToEnd drives the Run's hooks the way a collector
// would and checks both sides (recorder + registry) observe the stream.
func TestHooksFeedRunEndToEnd(t *testing.T) {
	r := NewRun(nil)
	hk := r.Hooks()
	hk.GCBegin(gc.GCBeginInfo{Trigger: gc.TriggerHeapFull, CondemnedIncrements: 2, CondemnedBytes: 4096, OccupiedBytes: 8192})
	hk.Condemned(gc.IncrementInfo{Belt: 0, Seq: 3, Train: -1, Bytes: 2048, Frames: 1})
	hk.GCEnd(gc.GCEndInfo{Duration: 500, BytesCopied: 1024, ObjectsCopied: 10, RemsetEntries: 3, BarrierSlowPaths: 5, SurvivorBytes: 4096})
	hk.Occupancy(gc.BeltStat{Belt: 0, Increments: 1, Bytes: 2048, Frames: 1})
	hk.GCBegin(gc.GCBeginInfo{Trigger: gc.TriggerForcedFull, Full: true, CondemnedBytes: 8192, OccupiedBytes: 8192})
	hk.GCEnd(gc.GCEndInfo{Duration: 1500, BytesCopied: 2048, SurvivorBytes: 6144})
	hk.Flip(1, 7)
	hk.OOM(64, 1<<20)

	s := r.Snapshot()
	if len(s.Events) != 8 {
		t.Fatalf("recorded %d events, want 8", len(s.Events))
	}
	for i, e := range s.Events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if s.Events[4].A&0xff != uint64(gc.TriggerForcedFull) || s.Events[4].A>>8 != 1 {
		t.Errorf("full flag not packed: A=%#x", s.Events[4].A)
	}
	m := s.Metrics
	if m.Counters[MetricCollections] != 2 || m.Counters[MetricFullCollections] != 1 {
		t.Errorf("collection counters wrong: %v", m.Counters)
	}
	if m.Counters[MetricBarrierSlow] != 5 || m.Counters[MetricFlips] != 1 || m.Counters[MetricOOMs] != 1 {
		t.Errorf("counters wrong: %v", m.Counters)
	}
	if m.Counters[MetricCondemnedBytes] != 4096+8192 {
		t.Errorf("condemned bytes = %d", m.Counters[MetricCondemnedBytes])
	}
	ph := m.Histograms[MetricPauseCost]
	if ph.Count != 2 || ph.Max != 1500 {
		t.Errorf("pause histogram wrong: %+v", ph)
	}
	if got := s.PauseQuantile(1); got != 1500 {
		t.Errorf("PauseQuantile(1) = %v", got)
	}
	if g := m.Gauges[MetricOccupiedBytes]; g != 6144 {
		t.Errorf("occupied gauge = %v", g)
	}
}

func TestPauseQuantileNilSafe(t *testing.T) {
	var s *RunSnapshot
	if s.PauseQuantile(0.5) != 0 {
		t.Error("nil snapshot quantile should be 0")
	}
	if (&RunSnapshot{}).PauseQuantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
}

// Zero-allocation guards: the acceptance criteria require every telemetry
// hot path to be allocation-free.
func TestZeroAllocHotPaths(t *testing.T) {
	rec := NewFlightRecorder(64)
	if n := testing.AllocsPerRun(1000, func() {
		rec.Emit(Event{Kind: EvGCEnd, Time: 1, Dur: 2, A: 3})
	}); n != 0 {
		t.Errorf("FlightRecorder.Emit allocates %v/op", n)
	}
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	// A full collection's worth of hook invocations.
	r := NewRun(nil)
	hk := r.Hooks()
	begin := gc.GCBeginInfo{Trigger: gc.TriggerHeapFull, CondemnedIncrements: 1, CondemnedBytes: 1024, OccupiedBytes: 2048}
	incr := gc.IncrementInfo{Belt: 0, Seq: 1, Train: -1, Bytes: 1024, Frames: 1}
	end := gc.GCEndInfo{Duration: 100, BytesCopied: 512, RemsetEntries: 2, BarrierSlowPaths: 1, SurvivorBytes: 512}
	belt := gc.BeltStat{Belt: 0, Increments: 1, Bytes: 512, Frames: 1}
	if n := testing.AllocsPerRun(1000, func() {
		hk.GCBegin(begin)
		hk.Condemned(incr)
		hk.GCEnd(end)
		hk.Occupancy(belt)
		hk.Flip(1, 2)
		hk.OOM(0, 1<<20)
	}); n != 0 {
		t.Errorf("full hook emission allocates %v/op", n)
	}
}
