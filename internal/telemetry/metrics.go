package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// histBuckets is the number of log-2 histogram buckets: bucket i counts
// observations <= 2^i for i < histBuckets-1; the last bucket is the
// +Inf overflow. 2^46 cost units is ~25 hours of simulated time at
// 733 MHz, far beyond any pause, so the overflow stays empty in practice.
const histBuckets = 48

// Counter is a monotonically increasing metric. Add is atomic and
// allocation-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-written float metric. Set is atomic and
// allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a log-2-bucketed distribution (powers of two make the
// bucket index one bits.Len64, so Observe is branch-light, atomic, and
// allocation-free). It tracks count, sum, and exact max alongside the
// buckets, and derives quantiles by log-linear interpolation.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	maxBits atomic.Uint64 // float64 bits, CAS-updated
}

// bucketIndex returns the bucket for observation v: the smallest i with
// v <= 2^i, clamped to the overflow bucket.
func bucketIndex(v float64) int {
	if v <= 1 {
		return 0
	}
	u := uint64(math.Ceil(v))
	idx := bits.Len64(u - 1)
	if idx >= histBuckets-1 {
		return histBuckets - 1
	}
	return idx
}

// bucketBound returns bucket i's upper bound (+Inf for the overflow).
func bucketBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// Observe records v. Negative observations are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the
// buckets by log-linear interpolation; the max is exact.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Snapshot captures the histogram as plain data.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		Max:   h.Max(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Bucket: i, Count: n})
		}
	}
	return s
}

// BucketCount is one non-empty histogram bucket: Bucket is the log-2
// bucket index (upper bound 2^Bucket; the last index is +Inf).
type BucketCount struct {
	Bucket int    `json:"b"`
	Count  uint64 `json:"n"`
}

// HistogramSnapshot is a JSON-able, mergeable histogram capture. Buckets
// are sparse (non-empty only) and non-cumulative, ascending by index.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Merge folds o into s (bucket-wise addition; max of maxes). Merging is
// commutative and associative, so aggregates are order-independent.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	counts := make(map[int]uint64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		counts[b.Bucket] += b.Count
	}
	for _, b := range o.Buckets {
		counts[b.Bucket] += b.Count
	}
	s.Buckets = s.Buckets[:0]
	for b, n := range counts {
		s.Buckets = append(s.Buckets, BucketCount{Bucket: b, Count: n})
	}
	sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].Bucket < s.Buckets[j].Bucket })
}

// Quantile estimates the q-quantile from the snapshot's buckets.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= rank {
			hi := bucketBound(b.Bucket)
			if math.IsInf(hi, 1) {
				return s.Max
			}
			lo := 0.0
			if b.Bucket > 0 {
				lo = bucketBound(b.Bucket - 1)
			}
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - cum) / float64(b.Count)
			}
			v := lo + frac*(hi-lo)
			if v > s.Max && s.Max > 0 {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}

// metric is the registry's bookkeeping for one named metric.
type metric struct {
	name, help string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// Registry holds a run's named metrics. Metric handles are created up
// front (registration may allocate); updates through the handles are
// allocation-free. Registration order is preserved in exports.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.metrics {
		if e.name == m.name {
			panic("telemetry: duplicate metric " + m.name)
		}
	}
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(&metric{name: name, help: help, hist: h})
	return h
}

// Snapshot captures every metric as plain, JSON-able data.
func (r *Registry) Snapshot() *RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &RegistrySnapshot{}
	for _, m := range r.metrics {
		switch {
		case m.counter != nil:
			if s.Counters == nil {
				s.Counters = map[string]uint64{}
			}
			s.Counters[m.name] = m.counter.Value()
		case m.gauge != nil:
			if s.Gauges == nil {
				s.Gauges = map[string]float64{}
			}
			s.Gauges[m.name] = m.gauge.Value()
		case m.hist != nil:
			if s.Histograms == nil {
				s.Histograms = map[string]*HistogramSnapshot{}
			}
			s.Histograms[m.name] = m.hist.Snapshot()
		}
	}
	return s
}

// WritePrometheus writes the registry in Prometheus text exposition
// format. labels is an optional `name="value"` list (without braces)
// attached to every sample, e.g. `collector="BSS"`.
func (r *Registry) WritePrometheus(w io.Writer, labels string) error {
	return writePrometheus(w, r.Snapshot(), labels, helpFor(r))
}

func helpFor(r *Registry) map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := make(map[string]string, len(r.metrics))
	for _, m := range r.metrics {
		h[m.name] = m.help
	}
	return h
}

// RegistrySnapshot is the JSON form of a registry: plain maps, mergeable
// with Merge. Go's encoding/json sorts map keys, so the encoding is
// deterministic.
type RegistrySnapshot struct {
	Counters   map[string]uint64             `json:"counters,omitempty"`
	Gauges     map[string]float64            `json:"gauges,omitempty"`
	Histograms map[string]*HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge folds o into s: counters and histograms add; gauges keep the
// maximum (the only commutative choice, so merge order never matters).
func (s *RegistrySnapshot) Merge(o *RegistrySnapshot) {
	for k, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = map[string]uint64{}
		}
		s.Counters[k] += v
	}
	for k, v := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = map[string]float64{}
		}
		if cur, ok := s.Gauges[k]; !ok || v > cur {
			s.Gauges[k] = v
		}
	}
	for k, v := range o.Histograms {
		if s.Histograms == nil {
			s.Histograms = map[string]*HistogramSnapshot{}
		}
		if cur, ok := s.Histograms[k]; ok {
			cur.Merge(v)
		} else {
			cp := *v
			cp.Buckets = append([]BucketCount(nil), v.Buckets...)
			s.Histograms[k] = &cp
		}
	}
}

// writePrometheus renders one snapshot. Histograms emit cumulative
// _bucket series (per the exposition format), then _sum and _count.
func writePrometheus(w io.Writer, s *RegistrySnapshot, labels string, help map[string]string) error {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		if h := help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		var err error
		switch {
		case s.Counters != nil && hasKeyU(s.Counters, name):
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", name, name, braced(labels), s.Counters[name])
		case s.Gauges != nil && hasKeyF(s.Gauges, name):
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %v\n", name, name, braced(labels), s.Gauges[name])
		default:
			err = writePromHistogram(w, name, labels, s.Histograms[name])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func hasKeyU(m map[string]uint64, k string) bool  { _, ok := m[k]; return ok }
func hasKeyF(m map[string]float64, k string) bool { _, ok := m[k]; return ok }

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func writePromHistogram(w io.Writer, name, labels string, h *HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		le := "+Inf"
		if bound := bucketBound(b.Bucket); !math.IsInf(bound, 1) {
			le = fmt.Sprintf("%g", bound)
		}
		if le == "+Inf" {
			continue // the explicit +Inf sample below carries the total
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", name, braced(labels), h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.Count)
	return err
}
