package telemetry

// DefaultRecorderCap is the flight-recorder capacity used by Run: enough
// to hold the full GC history of a short run and the recent history of a
// long one (each collection emits 2 + condemned + belts events).
const DefaultRecorderCap = 512

// FlightRecorder is a fixed-capacity ring buffer of Events. Emit never
// allocates: the buffer is sized once at construction and old events are
// overwritten when it wraps. It is not safe for concurrent use — one
// recorder belongs to one (single-threaded) run.
type FlightRecorder struct {
	buf   []Event
	total uint64 // events emitted over the recorder's lifetime
}

// NewFlightRecorder returns a recorder holding the last capacity events
// (DefaultRecorderCap when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &FlightRecorder{buf: make([]Event, capacity)}
}

// Emit appends e, stamping its Seq (1-based). Zero allocations.
func (r *FlightRecorder) Emit(e Event) {
	r.total++
	e.Seq = r.total
	r.buf[(r.total-1)%uint64(len(r.buf))] = e
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int { return len(r.buf) }

// Total returns the number of events emitted over the recorder's
// lifetime (including overwritten ones).
func (r *FlightRecorder) Total() uint64 { return r.total }

// Dropped returns how many events have been overwritten.
func (r *FlightRecorder) Dropped() uint64 {
	if n := uint64(len(r.buf)); r.total > n {
		return r.total - n
	}
	return 0
}

// Events returns the retained events, oldest first, as a fresh slice.
func (r *FlightRecorder) Events() []Event {
	n := r.total
	if c := uint64(len(r.buf)); n > c {
		n = c
	}
	out := make([]Event, 0, n)
	start := r.total - n
	for i := start; i < r.total; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

// Last returns up to n of the most recent events, oldest first.
func (r *FlightRecorder) Last(n int) []Event {
	ev := r.Events()
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	return ev
}
