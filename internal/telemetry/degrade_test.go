package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"beltway/internal/gc"
)

func TestDegradedHookCountersAndEvents(t *testing.T) {
	r := NewRun(nil)
	hooks := r.Hooks()

	hooks.Degraded(gc.DegradeInfo{Step: gc.DegradeEmergencyGC, HeapBytes: 1 << 16})
	hooks.Degraded(gc.DegradeInfo{Step: gc.DegradeEmergencyGC, HeapBytes: 1 << 16})
	hooks.Degraded(gc.DegradeInfo{Step: gc.DegradeRetryAverted, Requested: 28, HeapBytes: 1 << 16})
	hooks.Degraded(gc.DegradeInfo{Step: gc.DegradeReserveRetry, HeapBytes: 1 << 16})

	snap := r.Registry().Snapshot()
	if got := snap.Counters[MetricEmergencyCollections]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricEmergencyCollections, got)
	}
	if got := snap.Counters[MetricDegradedAverted]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricDegradedAverted, got)
	}

	ev := r.Recorder().Events()
	if len(ev) != 4 {
		t.Fatalf("recorded %d events, want 4 (one per ladder step)", len(ev))
	}
	for i, want := range []gc.DegradeStep{
		gc.DegradeEmergencyGC, gc.DegradeEmergencyGC, gc.DegradeRetryAverted, gc.DegradeReserveRetry,
	} {
		e := ev[i]
		if e.Kind != EvDegrade {
			t.Fatalf("event %d kind = %v, want EvDegrade", i, e.Kind)
		}
		if gc.DegradeStep(e.A) != want {
			t.Errorf("event %d step = %d, want %v", i, e.A, want)
		}
		if e.C != 1<<16 {
			t.Errorf("event %d heap bytes = %d, want %d", i, e.C, 1<<16)
		}
	}
	if got := ev[2].B; got != 28 {
		t.Errorf("retry-averted event requested = %d, want 28", got)
	}
	if s := ev[0].String(); !strings.Contains(s, "degrade step=emergency-collection") {
		t.Errorf("EvDegrade String = %q, want a readable step name", s)
	}
}

func TestDegradeMetricsExport(t *testing.T) {
	r := NewRun(nil)
	hooks := r.Hooks()
	hooks.Degraded(gc.DegradeInfo{Step: gc.DegradeEmergencyGC})
	hooks.Degraded(gc.DegradeInfo{Step: gc.DegradeRetryAverted})

	var buf bytes.Buffer
	if err := r.Registry().WritePrometheus(&buf, `collector="XX"`); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{MetricEmergencyCollections, MetricDegradedAverted} {
		if !strings.Contains(text, name+`{collector="XX"} 1`) {
			t.Errorf("Prometheus output missing %s sample:\n%s", name, text)
		}
	}

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back RunSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics.Counters[MetricEmergencyCollections] != 1 ||
		back.Metrics.Counters[MetricDegradedAverted] != 1 {
		t.Errorf("JSON round-trip lost degradation counters: %s", raw)
	}
	if len(back.Events) != 2 || back.Events[0].Kind != EvDegrade {
		t.Errorf("JSON round-trip lost EvDegrade events: %s", raw)
	}
}

func TestEmergencyTriggerName(t *testing.T) {
	e := Event{Kind: EvGCBegin, A: 5, B: 3}
	if s := e.String(); !strings.Contains(s, "trigger=emergency") {
		t.Errorf("EvGCBegin String = %q, want trigger=emergency for gc.TriggerEmergency", s)
	}
	if got := EvDegrade.String(); got != "degrade" {
		t.Errorf("EvDegrade.String() = %q", got)
	}
}
