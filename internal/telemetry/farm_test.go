package telemetry

import (
	"strings"
	"testing"
)

func TestFarmMetricsExport(t *testing.T) {
	r := NewRegistry()
	m := NewFarmMetrics(r)
	m.WorkersSpawned.Add(3)
	m.WorkersCrashed.Inc()
	m.JobsRetried.Inc()
	m.JobsCompleted.Add(8)
	m.LedgerEntries.Add(8)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"farm_workers_spawned_total 3",
		"farm_workers_crashed_total 1",
		"farm_worker_kills_total 0",
		"farm_jobs_retried_total 1",
		"farm_jobs_completed_total 8",
		"farm_ledger_entries_total 8",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
}
