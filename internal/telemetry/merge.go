package telemetry

import "sort"

// MergeRunSnapshots merges per-shard run snapshots into one aggregate
// snapshot. Each shard of a sharded run keeps a private FlightRecorder
// and Registry (hook emission stays single-owner and lock-free); the
// merge happens once, at aggregation:
//
//   - metrics merge through RegistrySnapshot.Merge — counters and
//     histogram buckets add, gauges keep their maximum — so the result
//     is independent of merge order, exactly like the Aggregator;
//   - events interleave by cost-clock Time, ties broken by input
//     (shard) order, and are re-stamped with a fresh Seq so the merged
//     stream is a well-formed recorder stream;
//   - dropped-event counts add.
//
// Nil snapshots are skipped; merging zero or all-nil snapshots yields
// an empty snapshot.
func MergeRunSnapshots(snaps ...*RunSnapshot) *RunSnapshot {
	out := &RunSnapshot{Metrics: &RegistrySnapshot{}}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		out.Events = append(out.Events, s.Events...)
		out.DroppedEvents += s.DroppedEvents
		if s.Metrics != nil {
			out.Metrics.Merge(s.Metrics)
		}
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		return out.Events[i].Time < out.Events[j].Time
	})
	for i := range out.Events {
		out.Events[i].Seq = uint64(i + 1)
	}
	return out
}
