package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"beltway/internal/stats"
)

// TraceRun is one run's contribution to a Chrome trace: its event
// stream, displayed as one process (pid) named Name.
type TraceRun struct {
	Name   string // e.g. "Beltway 25.25.100 / gcbench @ 32MB"
	Pid    int
	Events []Event
}

// traceEvent is one entry of the Chrome trace_event format
// (catapult "JSON Array Format"; loads in chrome://tracing and Perfetto).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds (ph "X")
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts cost units to trace microseconds via the nominal clock
// rate (display scaling only; relative durations are exact).
func usec(costUnits float64) float64 {
	return costUnits / stats.CyclesPerSecond * 1e6
}

// WriteChromeTrace renders runs as a Chrome trace_event JSON object.
// Each collection becomes a complete ("X") slice named by its trigger,
// with the begin/end payloads in args; belt occupancy becomes counter
// ("C") series sampled after every collection; flips and OOMs become
// instant ("i") events.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error {
	var evs []traceEvent
	for _, run := range runs {
		evs = append(evs, traceEvent{
			Name: "process_name", Ph: "M", Pid: run.Pid, Tid: 0,
			Args: map[string]any{"name": run.Name},
		})
		evs = append(evs, runTraceEvents(run)...)
	}
	if evs == nil {
		evs = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}

func runTraceEvents(run TraceRun) []traceEvent {
	var out []traceEvent
	var begin *Event
	occ := map[string]any{}
	for i := range run.Events {
		e := run.Events[i]
		switch e.Kind {
		case EvGCBegin:
			begin = &run.Events[i]
		case EvGCEnd:
			args := map[string]any{
				"gc":             e.GC,
				"bytes_copied":   e.A,
				"objects":        e.B,
				"remset":         e.C,
				"barrier_slow":   e.D,
				"dur_cost_units": e.Dur,
			}
			name := "gc"
			if begin != nil && begin.GC == e.GC {
				name = triggerName(uint8(begin.A))
				if begin.A>>8 != 0 {
					name += " (full)"
				}
				args["condemned_increments"] = begin.B
				args["condemned_bytes"] = begin.C
				args["occupied_bytes"] = begin.D
			}
			out = append(out, traceEvent{
				Name: name, Cat: "gc", Ph: "X",
				Ts: usec(e.Time - e.Dur), Dur: usec(e.Dur),
				Pid: run.Pid, Tid: 1, Args: args,
			})
			begin = nil
		case EvBelt:
			// Accumulate this collection's belt samples into one counter
			// event per belt so Perfetto draws stacked occupancy tracks.
			occ[fmt.Sprintf("belt%d", e.A)] = e.C
			last := i+1 >= len(run.Events) || run.Events[i+1].Kind != EvBelt
			if last {
				args := make(map[string]any, len(occ))
				for k, v := range occ {
					args[k] = v
				}
				out = append(out, traceEvent{
					Name: "belt occupancy (bytes)", Ph: "C",
					Ts: usec(e.Time), Pid: run.Pid, Tid: 0, Args: args,
				})
			}
		case EvFlip:
			out = append(out, traceEvent{
				Name: "belt flip", Cat: "gc", Ph: "i",
				Ts: usec(e.Time), Pid: run.Pid, Tid: 1,
				Args: map[string]any{"alloc_belt": e.A, "remset": e.B},
			})
		case EvOOM:
			out = append(out, traceEvent{
				Name: "OOM", Cat: "gc", Ph: "i",
				Ts: usec(e.Time), Pid: run.Pid, Tid: 1,
				Args: map[string]any{"requested": e.A, "heap_bytes": e.B},
			})
		case EvPolicy:
			belt := "global"
			if bb := uint8(e.A >> 8); bb != 0 {
				belt = fmt.Sprintf("belt%d", bb-1)
			}
			out = append(out, traceEvent{
				Name: "policy: " + policyKnobName(uint8(e.A)), Cat: "policy", Ph: "i",
				Ts: usec(e.Time), Pid: run.Pid, Tid: 1,
				Args: map[string]any{
					"reason": policyReasonName(uint8(e.A >> 24)),
					"belt":   belt,
					"value":  math.Float64frombits(e.B),
					"gc":     e.GC,
				},
			})
		case EvRequest:
			// Request slices go on their own track (tid 2) so GC pauses
			// (tid 1) visually overlay the requests they inflate.
			name := "read"
			if uint8(e.A) == 1 {
				name = "write"
			}
			args := map[string]any{
				"key":            e.B,
				"phase":          e.C,
				"dur_cost_units": e.Dur,
			}
			if e.A>>8 != 0 {
				args["gc_pause_cost"] = e.D
			}
			out = append(out, traceEvent{
				Name: name, Cat: "request", Ph: "X",
				Ts: usec(e.Time - e.Dur), Dur: usec(e.Dur),
				Pid: run.Pid, Tid: 2, Args: args,
			})
		}
	}
	return out
}
