package telemetry

import (
	"math"
	"sort"
	"testing"

	"beltway/internal/stats"
)

// latencySample builds a deterministic request-latency-shaped
// distribution: a dense body of cheap requests, a mid tail of
// cache-missing ones, and a sparse far tail of pause-inflated requests —
// the shape the server SLO evaluator feeds this histogram.
func latencySample(n int) []float64 {
	out := make([]float64, 0, n)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		u := float64(next()>>11) / (1 << 53)
		switch {
		case u < 0.90: // body: ~400-800 cost units
			out = append(out, 400+u*500)
		case u < 0.999: // mid tail: up to ~50k
			out = append(out, 1000+u*50000)
		default: // pause-inflated: 1M-5M
			out = append(out, 1e6+u*4e6)
		}
	}
	return out
}

// TestQuantileInterpolationBound pins the histogram's quantile error to
// its documented bound: estimates interpolate inside log-2 buckets, so
// an estimate can differ from the exact sample quantile by at most the
// bucket width — a factor of 2 either way. The server experiment's SLO
// verdicts use exact sorted quantiles (internal/server.Summarize); this
// bound is what makes the telemetry histogram's p99s trustworthy as a
// cross-check, and this test fails if the bucketing scheme ever gets
// coarser.
func TestQuantileInterpolationBound(t *testing.T) {
	samples := latencySample(20000)
	h := &Histogram{}
	for _, v := range samples {
		h.Observe(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	exactQ := func(q float64) float64 {
		// The same shared nearest-rank the exact-quantile consumers use
		// (stats.SummarizePauses, server.Summarize).
		return stats.NearestRank(sorted, q)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		est := h.Quantile(q)
		exact := exactQ(q)
		if est < exact/2 || est > exact*2 {
			t.Fatalf("q=%v: estimate %v outside [exact/2, 2*exact] of exact %v", q, est, exact)
		}
	}
	// The max path is exact, not interpolated.
	if got, want := h.Quantile(1), sorted[len(sorted)-1]; got != want {
		t.Fatalf("q=1: %v, want exact max %v", got, want)
	}
	// Estimates are monotone in q and never exceed the exact max.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		est := h.Quantile(q)
		if est < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, est, prev)
		}
		if est > h.Max() {
			t.Fatalf("q=%v estimate %v exceeds max %v", q, est, h.Max())
		}
		prev = est
	}
}

// TestQuantileBoundSurvivesMerge: the bound must hold for merged
// snapshots too (the sharded server path merges per-shard histograms
// before quoting quantiles).
func TestQuantileBoundSurvivesMerge(t *testing.T) {
	samples := latencySample(10000)
	half := len(samples) / 2
	a, b := &Histogram{}, &Histogram{}
	for _, v := range samples[:half] {
		a.Observe(v)
	}
	for _, v := range samples[half:] {
		b.Observe(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())

	whole := &Histogram{}
	for _, v := range samples {
		whole.Observe(v)
	}
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.Max != want.Max {
		t.Fatalf("merge lost observations: %+v vs %+v", merged, want)
	}
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		if m, w := merged.Quantile(q), want.Quantile(q); m != w {
			t.Fatalf("q=%v: merged %v != whole %v", q, m, w)
		}
	}
}
