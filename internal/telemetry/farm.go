package telemetry

// FarmMetrics are the experiment-farm orchestrator's counters: worker
// process lifecycle, job retry traffic, and ledger growth. Registered on
// a Registry so they export through the same snapshot/Prometheus paths
// as the collector metrics.
type FarmMetrics struct {
	// WorkersSpawned counts worker process launches, respawns included.
	WorkersSpawned *Counter
	// WorkersCrashed counts worker processes lost mid-job (exit, signal,
	// hang escalation, protocol breakdown).
	WorkersCrashed *Counter
	// WorkerKills counts hang escalations that ended in the orchestrator
	// SIGKILLing a worker.
	WorkerKills *Counter
	// JobsRetried counts jobs requeued after a worker crash.
	JobsRetried *Counter
	// JobsCompleted counts jobs that settled with a completed outcome
	// (ok, oom, budget), fresh or resumed.
	JobsCompleted *Counter
	// LedgerEntries counts entries appended to the run ledger.
	LedgerEntries *Counter
}

// NewFarmMetrics registers the farm counters on a registry.
func NewFarmMetrics(r *Registry) *FarmMetrics {
	return &FarmMetrics{
		WorkersSpawned: r.NewCounter("farm_workers_spawned_total", "worker processes launched (respawns included)"),
		WorkersCrashed: r.NewCounter("farm_workers_crashed_total", "worker processes lost mid-job"),
		WorkerKills:    r.NewCounter("farm_worker_kills_total", "workers SIGKILLed after missing the job deadline"),
		JobsRetried:    r.NewCounter("farm_jobs_retried_total", "jobs requeued after a worker crash"),
		JobsCompleted:  r.NewCounter("farm_jobs_completed_total", "jobs settled with a completed outcome"),
		LedgerEntries:  r.NewCounter("farm_ledger_entries_total", "entries appended to the run ledger"),
	}
}
