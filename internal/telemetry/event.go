// Package telemetry is the observability subsystem: a fixed-capacity
// allocation-free flight recorder of typed GC events, a metrics registry
// (counters, gauges, log-bucketed histograms) with Prometheus and JSON
// export, and renderers (Chrome trace_event JSON, ASCII heap timeline).
//
// Telemetry observes the deterministic cost timeline but never advances
// it: hook emission reads stats.Clock.Now() and performs no clock work,
// so enabling telemetry cannot change any experiment's results.
package telemetry

import (
	"fmt"
	"math"
)

// EventKind discriminates flight-recorder events. The A..D payload slots
// of Event are interpreted per kind; see the constants below.
type EventKind uint8

const (
	// EvNone is the zero value (an empty ring slot).
	EvNone EventKind = iota

	// EvGCBegin: a collection started and its condemned set is fixed.
	//   A = trigger kind (gc.TriggerKind) | full<<8 (1 when the condemned
	//       set spans the whole occupied heap)
	//   B = condemned increments
	//   C = condemned bytes
	//   D = occupied bytes at collection start
	EvGCBegin

	// EvGCEnd: a collection completed. Dur holds the pause length in cost
	// units.
	//   A = bytes copied
	//   B = objects copied
	//   C = remembered-set entries examined
	//   D = barrier slow paths taken since the previous collection
	EvGCEnd

	// EvCondemned: one condemned increment (emitted after EvGCBegin).
	//   A = belt index
	//   B = increment seq | (train+1)<<32 (so 0 in the high word means
	//       "not a MOS car")
	//   C = increment bytes
	//   D = increment frames
	EvCondemned

	// EvBelt: one belt's occupancy after a collection (emitted after
	// EvGCEnd, one event per belt).
	//   A = belt index
	//   B = increments on the belt
	//   C = belt bytes
	//   D = belt frames
	EvBelt

	// EvFlip: an older-first configuration swapped its belts.
	//   A = new allocation belt index
	//   B = remembered-set entries at the flip
	EvFlip

	// EvOOM: the collector gave up on an allocation or exhausted its copy
	// reserve (A == 0 in the latter case).
	//   A = requested bytes
	//   B = configured heap bytes
	EvOOM

	// EvDegrade: the collector took one step down the graceful-degradation
	// ladder (Config.Degrade) instead of reporting OOM outright.
	//   A = degradation step (gc.DegradeStep)
	//   B = requested bytes (0 for steps not tied to an allocation)
	//   C = configured heap bytes
	EvDegrade

	// EvRequest: one served server request (internal/server). Time is
	// the request's end, Dur its latency, both in cost units.
	//   A = request kind (0 read, 1 write) | paused<<8 (1 when the
	//       request overlapped a GC pause)
	//   B = key
	//   C = phase index
	//   D = pause cost inside the request, in whole cost units
	EvRequest

	// EvPolicy: the adaptive policy controller made a decision
	// (internal/policy). Marker decisions (e.g. a phase-shift note) carry
	// knob 0.
	//   A = knob id (core.Knob) | (belt+1)<<8 (0 in that byte for global
	//       knobs) | reason<<24 (policy.Reason)
	//   B = math.Float64bits of the knob's new value
	EvPolicy
)

func (k EventKind) String() string {
	switch k {
	case EvGCBegin:
		return "gc-begin"
	case EvGCEnd:
		return "gc-end"
	case EvCondemned:
		return "condemned"
	case EvBelt:
		return "belt"
	case EvFlip:
		return "flip"
	case EvOOM:
		return "oom"
	case EvDegrade:
		return "degrade"
	case EvRequest:
		return "request"
	case EvPolicy:
		return "policy"
	default:
		return "none"
	}
}

// Event is one flight-recorder entry. Events are fixed-size values so the
// ring buffer never allocates; the A..D payload slots are typed by Kind
// (see the EventKind constants).
type Event struct {
	Kind EventKind `json:"k"`
	// Seq is the 1-based emission sequence number within the run.
	Seq uint64 `json:"seq"`
	// Time is the cost-model clock at emission.
	Time float64 `json:"t"`
	// Dur is the pause duration in cost units (EvGCEnd only).
	Dur float64 `json:"dur,omitempty"`
	// GC is the 1-based collection ordinal the event belongs to (0 for
	// events outside any collection, e.g. a flip or a mutator OOM).
	GC uint64 `json:"gc,omitempty"`

	A uint64 `json:"a,omitempty"`
	B uint64 `json:"b,omitempty"`
	C uint64 `json:"c,omitempty"`
	D uint64 `json:"d,omitempty"`
}

// String renders the event for diagnostic dumps (validator failures).
func (e Event) String() string {
	switch e.Kind {
	case EvGCBegin:
		full := ""
		if e.A>>8 != 0 {
			full = " full"
		}
		return fmt.Sprintf("#%d t=%.0f gc%d begin trigger=%s%s condemned=%d incrs/%dB occupied=%dB",
			e.Seq, e.Time, e.GC, triggerName(uint8(e.A)), full, e.B, e.C, e.D)
	case EvGCEnd:
		return fmt.Sprintf("#%d t=%.0f gc%d end dur=%.0f copied=%dB/%d objs remset=%d slow=%d",
			e.Seq, e.Time, e.GC, e.Dur, e.A, e.B, e.C, e.D)
	case EvCondemned:
		train := ""
		if hi := e.B >> 32; hi != 0 {
			train = fmt.Sprintf(" train%d", hi-1)
		}
		return fmt.Sprintf("#%d t=%.0f gc%d condemn belt%d/incr%d%s %dB/%d frames",
			e.Seq, e.Time, e.GC, e.A, uint32(e.B), train, e.C, e.D)
	case EvBelt:
		return fmt.Sprintf("#%d t=%.0f gc%d belt%d: %d incrs %dB/%d frames",
			e.Seq, e.Time, e.GC, e.A, e.B, e.C, e.D)
	case EvFlip:
		return fmt.Sprintf("#%d t=%.0f flip alloc-belt=%d remset=%d", e.Seq, e.Time, e.A, e.B)
	case EvOOM:
		return fmt.Sprintf("#%d t=%.0f OOM requested=%d heap=%d", e.Seq, e.Time, e.A, e.B)
	case EvDegrade:
		return fmt.Sprintf("#%d t=%.0f degrade step=%s requested=%d heap=%d",
			e.Seq, e.Time, degradeName(uint8(e.A)), e.B, e.C)
	case EvRequest:
		kind := "read"
		if uint8(e.A) == 1 {
			kind = "write"
		}
		paused := ""
		if e.A>>8 != 0 {
			paused = " paused"
		}
		return fmt.Sprintf("#%d t=%.0f request %s key=%d phase=%d dur=%.0f%s",
			e.Seq, e.Time, kind, e.B, e.C, e.Dur, paused)
	case EvPolicy:
		belt := "global"
		if bb := uint8(e.A >> 8); bb != 0 {
			belt = fmt.Sprintf("belt%d", bb-1)
		}
		return fmt.Sprintf("#%d t=%.0f gc%d policy %s: %s(%s)=%g",
			e.Seq, e.Time, e.GC, policyReasonName(uint8(e.A>>24)),
			policyKnobName(uint8(e.A)), belt, math.Float64frombits(e.B))
	default:
		return fmt.Sprintf("#%d t=%.0f %s", e.Seq, e.Time, e.Kind)
	}
}

// triggerName mirrors gc.TriggerKind.String without importing gc (the gc
// package is kept free of telemetry knowledge; telemetry only reads the
// numeric kind it stored in the payload).
func triggerName(t uint8) string {
	switch t {
	case 1:
		return "heap-full"
	case 2:
		return "remset"
	case 3:
		return "forced"
	case 4:
		return "forced-full"
	case 5:
		return "emergency"
	default:
		return "unknown"
	}
}

// policyKnobName mirrors core.Knob.String without importing core (like
// triggerName, telemetry only reads the numeric id it stored).
func policyKnobName(k uint8) string {
	switch k {
	case 1:
		return "increment-frac"
	case 2:
		return "max-increments"
	case 3:
		return "reserve-frac"
	case 4:
		return "promote-to"
	case 5:
		return "remset-threshold"
	case 6:
		return "ttd-bytes"
	default:
		return "none"
	}
}

// policyReasonName mirrors policy.Reason.String, again without importing
// the policy package.
func policyReasonName(r uint8) string {
	switch r {
	case 1:
		return "pause-over-budget"
	case 2:
		return "occupancy-revert"
	case 3:
		return "phase-shift"
	case 4:
		return "mmu-below-floor"
	case 5:
		return "footprint-over-cap"
	case 6:
		return "footprint-relax"
	case 7:
		return "gc-overhead-high"
	default:
		return "none"
	}
}

// degradeName mirrors gc.DegradeStep.String, again without importing gc.
func degradeName(s uint8) string {
	switch s {
	case 1:
		return "emergency-collection"
	case 2:
		return "retry-averted"
	case 3:
		return "reserve-retry"
	case 4:
		return "reserve-overdraft"
	case 5:
		return "remset-overflow"
	default:
		return "unknown"
	}
}
