package beltway_test

import (
	"bytes"
	"errors"
	"testing"

	"beltway"
)

// TestPublicAPIQuickstart exercises the documented public surface end to
// end: configure, allocate, mutate, collect, read back, inspect stats.
func TestPublicAPIQuickstart(t *testing.T) {
	types := beltway.NewTypes()
	col, err := beltway.New(beltway.XX100(25, beltway.Options{
		HeapBytes:  512 << 10,
		FrameBytes: 8 << 10,
	}), types)
	if err != nil {
		t.Fatal(err)
	}
	m := beltway.NewMutator(col)
	node := types.DefineScalar("node", 1, 2)

	err = m.Run(func() {
		head := m.Alloc(node, 0)
		m.SetData(head, 0, 0)
		tail := head
		for i := 1; i < 5000; i++ {
			n := m.Alloc(node, 0)
			m.SetData(n, 0, uint32(i))
			m.SetRef(tail, 0, n)
			if tail != head {
				m.Release(tail)
			}
			tail = n
		}
		m.Collect(true)
		if m.GetData(head, 0) != 0 {
			t.Error("head corrupted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Collections() == 0 {
		t.Error("no collections")
	}
	if col.Clock().Counters.BytesAllocated == 0 {
		t.Error("no allocation recorded")
	}
}

// TestPublicPresets instantiates every exported preset.
func TestPublicPresets(t *testing.T) {
	o := beltway.Options{HeapBytes: 256 << 10, FrameBytes: 4 << 10}
	for _, cfg := range []beltway.Config{
		beltway.SemiSpace(o),
		beltway.BA2(o),
		beltway.XX(25, o),
		beltway.XX100(25, o),
		beltway.XY(25, 50, o),
		beltway.OlderFirst(25, o),
		beltway.OlderFirstMix(25, o),
		beltway.Appel(o),
		beltway.FixedNursery(25, o),
	} {
		if _, err := beltway.New(cfg, beltway.NewTypes()); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if _, err := beltway.ParseConfig("25.25.100", o); err != nil {
		t.Errorf("ParseConfig: %v", err)
	}
	if _, err := beltway.ParseConfig("bogus", o); err == nil {
		t.Error("ParseConfig accepted garbage")
	}
}

// TestPublicBenchmarkRun runs a bundled workload through the facade and
// computes its MMU curve.
func TestPublicBenchmarkRun(t *testing.T) {
	env := beltway.EnvForScale(0.1)
	b := beltway.GetBenchmark("jess")
	if b == nil || len(beltway.Benchmarks()) != 6 {
		t.Fatal("benchmark catalog broken")
	}
	o := beltway.Options{HeapBytes: 1 << 20, FrameBytes: env.FrameBytes}
	res, err := beltway.Run(beltway.XX100(25, o), b, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatal("unexpected OOM")
	}
	if res.TotalTime <= 0 || res.Collections == 0 {
		t.Error("degenerate result")
	}
	curve := beltway.ComputeMMU(res, 16)
	if len(curve.Points) != 16 || curve.Throughput <= 0 || curve.Throughput > 1 {
		t.Error("bad MMU curve")
	}
}

// TestPublicMinHeapAndOOM checks FindMinHeap through the facade.
func TestPublicMinHeapAndOOM(t *testing.T) {
	env := beltway.EnvForScale(0.1)
	b := beltway.GetBenchmark("db")
	mk := func(h int) beltway.Config {
		return beltway.Appel(beltway.Options{HeapBytes: h, FrameBytes: env.FrameBytes})
	}
	min, err := beltway.FindMinHeap(mk, b, env)
	if err != nil {
		t.Fatal(err)
	}
	below, err := beltway.Run(mk(min-2*env.FrameBytes), b, env)
	if err != nil {
		t.Fatal(err)
	}
	if !below.OOM {
		t.Error("run below min heap completed")
	}
}

// TestPublicTraceRoundTrip records, serializes and replays through the
// facade.
func TestPublicTraceRoundTrip(t *testing.T) {
	o := beltway.Options{HeapBytes: 256 << 10, FrameBytes: 4 << 10}
	tr := beltway.NewTrace()
	types := beltway.NewTypes()
	col, err := beltway.New(beltway.XX100(25, o), types)
	if err != nil {
		t.Fatal(err)
	}
	m := beltway.NewMutator(col)
	m.SetRecorder(tr)
	node := types.DefineScalar("n", 1, 1)
	if err := m.Run(func() {
		for i := 0; i < 2000; i++ {
			m.Push()
			h := m.Alloc(node, 0)
			m.SetData(h, 0, uint32(i))
			m.Pop()
		}
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := beltway.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	col2, err := beltway.New(beltway.Appel(o), beltway.NewTypes())
	if err != nil {
		t.Fatal(err)
	}
	if err := beltway.ReplayTrace(tr2, beltway.NewMutator(col2)); err != nil {
		t.Fatal(err)
	}
	if col2.Clock().Counters.BytesAllocated != col.Clock().Counters.BytesAllocated {
		t.Error("replay allocation volume differs")
	}
}

// TestErrorsSurfaceThroughFacade: invalid configs error cleanly.
func TestErrorsSurfaceThroughFacade(t *testing.T) {
	_, err := beltway.New(beltway.Config{Name: "broken"}, beltway.NewTypes())
	if err == nil {
		t.Error("invalid config accepted")
	}
	var cfgOK beltway.Config = beltway.SemiSpace(beltway.Options{HeapBytes: 64 << 10, FrameBytes: 4 << 10})
	col, err := beltway.New(cfgOK, beltway.NewTypes())
	if err != nil {
		t.Fatal(err)
	}
	m := beltway.NewMutator(col)
	big := col.Space().Types.DefineWordArray("big")
	runErr := m.Run(func() {
		for {
			m.AllocGlobal(big, 100)
		}
	})
	if runErr == nil {
		t.Fatal("no OOM")
	}
	if !errors.Is(runErr, beltway.ErrOutOfMemory) {
		t.Errorf("OOM error does not unwrap to beltway.ErrOutOfMemory: %v", runErr)
	}
}
