// Quickstart: build a Beltway 25.25.100 collector, allocate a linked
// structure under heap pressure, survive collections, and inspect the
// collector's statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"beltway"
)

func main() {
	// A 2MB simulated heap of 16KB frames, managed by the paper's
	// complete incremental collector, Beltway 25.25.100.
	types := beltway.NewTypes()
	cfg := beltway.XX100(25, beltway.Options{
		HeapBytes:  2 << 20,
		FrameBytes: 16 << 10,
	})
	col, err := beltway.New(cfg, types)
	if err != nil {
		log.Fatal(err)
	}
	m := beltway.NewMutator(col)

	// Object layouts: a list node with one reference slot and two data
	// words, and a short-lived scratch buffer.
	node := types.DefineScalar("node", 1, 2)
	scratch := types.DefineWordArray("scratch")

	const n = 50_000
	err = m.Run(func() {
		// Build a 10k-node linked list while churning garbage: the
		// scratch buffers die young (nursery), the list survives
		// (promoted up the belts).
		head := m.Alloc(node, 0)
		m.SetData(head, 0, 0)
		tail := head
		for i := 1; i < n; i++ {
			nd := m.Alloc(node, 0)
			m.SetData(nd, 0, uint32(i))
			m.SetRef(tail, 0, nd) // barriered store
			if tail != head {
				m.Release(tail)
			}
			tail = nd

			if i%10 == 0 {
				m.Push() // scope for temporaries
				buf := m.Alloc(scratch, 32)
				m.SetData(buf, 0, uint32(i))
				m.Pop() // buf dies here
			}
			if i%1000 == 0 {
				m.Release(tail) // keep only every 1000th node reachable
				tail = trim(m, head)
			}
		}

		// Walk the list and verify the payloads survived every move.
		count, cur := 0, head
		for {
			count++
			if m.RefIsNil(cur, 0) {
				break
			}
			next := m.GetRef(cur, 0)
			if cur != head {
				m.Release(cur)
			}
			cur = next
		}
		fmt.Printf("list intact: %d nodes reachable\n", count)
	})
	if err != nil {
		log.Fatal(err)
	}

	c := col.Clock().Counters
	fmt.Printf("collector:    %s\n", col.Name())
	fmt.Printf("allocated:    %.2f MB in %d objects\n",
		float64(c.BytesAllocated)/(1<<20), c.ObjectsAllocated)
	fmt.Printf("collections:  %d (%d bytes copied)\n", col.Collections(), c.BytesCopied)
	fmt.Printf("write barrier: %d stores, %d remembered\n",
		c.PointerStores, c.RemsetInserts)
	fmt.Printf("gc time:      %.1f%% of the run\n", 100*col.Clock().GCFraction())
	fmt.Printf("copy reserve: %d KB of %d KB heap\n",
		col.ReserveBytes()/1024, cfg.HeapBytes/1024)
}

// trim drops every node whose payload is not a multiple of 1000 by
// linking survivors directly, then returns a handle to the last
// surviving node. It leaves large amounts of garbage behind — fodder for
// the belts.
func trim(m *beltway.Mutator, head beltway.Handle) beltway.Handle {
	cur := m.Keep(head)
	for {
		if m.RefIsNil(cur, 0) {
			return cur
		}
		next := m.GetRef(cur, 0)
		if m.GetData(next, 0)%1000 == 0 {
			m.Release(cur)
			cur = m.Keep(next)
			m.Release(next)
			continue
		}
		// Splice the next node out.
		if m.RefIsNil(next, 0) {
			m.SetRefNil(cur, 0)
			m.Release(next)
			return cur
		}
		skip := m.GetRef(next, 0)
		m.SetRef(cur, 0, skip)
		m.Release(next)
		m.Release(skip)
	}
}
