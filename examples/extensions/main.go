// Extensions: the three beyond-the-paper features working together on
// one collector — a Mature Object Space top belt (completeness without
// full-heap collections), a large object space (objects bigger than a
// frame), and allocation-site pretenuring (long-lived data skips the
// nursery). The program is a small document store: a pretenured index,
// large document buffers in the LOS, and short-lived query temporaries.
//
// Run with: go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"beltway"
)

func main() {
	types := beltway.NewTypes()
	cfg := beltway.XXMOS(20, beltway.Options{
		HeapBytes:  4 << 20,
		FrameBytes: 8 << 10,
	})
	cfg = beltway.WithLOS(cfg, 4<<10) // objects > 4KB go to the LOS
	col, err := beltway.New(cfg, types)
	if err != nil {
		log.Fatal(err)
	}
	m := beltway.NewMutator(col)

	indexNode := types.DefineScalar("index", 2, 2) // doc ref, next, key words
	document := types.DefineWordArray("document")  // large payloads
	query := types.DefineScalar("query", 1, 3)     // short-lived

	const docs = 120
	err = m.Run(func() {
		// The index is long-lived by construction: pretenure it.
		var head beltway.Handle
		for d := 0; d < docs; d++ {
			n := m.AllocPretenuredGlobal(indexNode, 0)
			m.SetData(n, 0, uint32(d))
			if head != beltway.NilHandle {
				m.SetRef(n, 1, head)
				m.Release(head)
			}
			head = n

			// Document payload: 6-14KB, straight to the LOS.
			doc := m.Alloc(document, 1500+(d%9)*500)
			m.SetData(doc, 0, uint32(d)*7)
			m.SetRef(n, 0, doc)
			m.Release(doc)

			// Query churn: thousands of short-lived temporaries.
			m.Push()
			for q := 0; q < 400; q++ {
				qq := m.Alloc(query, 0)
				m.SetRef(qq, 0, n)
				m.SetData(qq, 0, uint32(q))
			}
			m.Pop()
		}

		// Drop half the index (and so half the documents), then force a
		// full cycle so the LOS sweep runs.
		cur := m.Keep(head)
		for d := 0; d < docs/2; d++ {
			next := m.GetRef(cur, 1)
			m.Release(cur)
			cur = m.Keep(next)
			m.Release(next)
		}
		m.SetRefNil(cur, 1) // cut the chain: older half is garbage
		m.Release(cur)
		m.Collect(true)

		// Verify the surviving half.
		count := 0
		cur = m.Keep(head)
		for {
			doc := m.GetRef(cur, 0)
			want := m.GetData(cur, 0) * 7
			if got := m.GetData(doc, 0); got != want {
				log.Fatalf("document %d corrupted: %d != %d", count, got, want)
			}
			m.Release(doc)
			count++
			if m.RefIsNil(cur, 1) {
				break
			}
			next := m.GetRef(cur, 1)
			m.Release(cur)
			cur = m.Keep(next)
			m.Release(next)
		}
		fmt.Printf("index intact: %d documents survive\n", count)
	})
	if err != nil {
		log.Fatal(err)
	}

	c := col.Clock().Counters
	fmt.Printf("collections:       %d (%d full)\n", col.Collections(), c.FullCollections)
	fmt.Printf("pretenured:        %.1f KB (skipped the nursery)\n", float64(c.PretenuredBytes)/1024)
	fmt.Printf("large objects:     %.1f KB allocated, %.1f KB swept, %d live\n",
		float64(c.LOSBytesAllocated)/1024, float64(c.LOSBytesSwept)/1024, col.LOSObjects())
	fmt.Printf("copied:            %.1f KB (the index never moved through the nursery)\n",
		float64(c.BytesCopied)/1024)
	mos := col.Belts()[len(col.Belts())-1]
	trains := map[int]bool{}
	for _, in := range mos.Increments() {
		trains[in.Train()] = true
	}
	fmt.Printf("mature space:      %d cars across %d trains\n", mos.Len(), len(trains))
}
