// Custom-collector: the point of the Beltway framework is that new
// collectors are configurations, not code. This example builds a novel
// four-belt collector — small nursery, two intermediate FIFO belts with
// a time-to-die trigger, complete top belt — that exists in no prior
// work, runs it against the paper's named configurations on the same
// workload, and prints a comparison.
//
// Run with: go run ./examples/custom-collector
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"beltway"
)

func main() {
	env := beltway.EnvForScale(0.5)
	bench := beltway.GetBenchmark("javac")

	o := beltway.Options{FrameBytes: env.FrameBytes, PhysMemBytes: env.PhysMemBytes}

	// Heap: 1.5x the Appel minimum for this workload.
	min, err := beltway.FindMinHeap(func(h int) beltway.Config {
		opts := o
		opts.HeapBytes = h
		return beltway.Appel(opts)
	}, bench, env)
	if err != nil {
		log.Fatal(err)
	}
	o.HeapBytes = min * 3 / 2
	fmt.Printf("workload %s, heap %.2f MB (1.5x Appel min)\n\n",
		bench.Name, float64(o.HeapBytes)/(1<<20))

	// The novel configuration: Beltway 10.20.40.100 with a time-to-die
	// trigger on the nursery. Belts are just specs; the engine does the
	// rest.
	custom := beltway.Config{
		Name: "Beltway 10.20.40.100+ttd",
		Belts: []beltway.BeltSpec{
			{IncrementFrac: 0.10, MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: 0.20, PromoteTo: 2},
			{IncrementFrac: 0.40, PromoteTo: 3},
			{IncrementFrac: 1.00, PromoteTo: 3},
		},
		NurseryFilter: true,
		TTDBytes:      o.HeapBytes / 32,
	}
	o.Apply(&custom)

	configs := []beltway.Config{
		custom,
		beltway.XX100(25, o),
		beltway.Appel(o),
		beltway.SemiSpace(o),
		beltway.OlderFirst(25, o),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "collector\tGCs\tcopied MB\tGC time %\tmax pause ms\ttotal (rel)")
	var base float64
	for i, cfg := range configs {
		res, err := beltway.Run(cfg, bench, env)
		if err != nil {
			log.Fatal(err)
		}
		if res.OOM {
			fmt.Fprintf(w, "%s\tOOM\t-\t-\t-\t-\n", cfg.Name)
			continue
		}
		if i == 0 {
			base = res.TotalTime
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.1f%%\t%.3f\t%.3f\n",
			cfg.Name,
			res.Collections,
			float64(res.Counters.BytesCopied)/(1<<20),
			100*res.GCFraction(),
			res.MaxPause/733e3,
			res.TotalTime/base)
	}
	w.Flush()
	fmt.Println("\n(total time relative to the custom collector; lower is better)")
}
