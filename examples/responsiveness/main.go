// Responsiveness: reproduce the paper's §4.3 methodology on one
// workload — compare minimum mutator utilization (MMU) curves across
// collector configurations. Smaller Beltway increments bound pause
// times, so Beltway 10.10/10.10.100 sit to the left of (respond better
// than) Appel, as in paper Figure 11.
//
// Run with: go run ./examples/responsiveness
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"beltway"
)

func main() {
	env := beltway.EnvForScale(0.5)
	bench := beltway.GetBenchmark("javac")

	base := beltway.Options{FrameBytes: env.FrameBytes, PhysMemBytes: env.PhysMemBytes}
	min, err := beltway.FindMinHeap(func(h int) beltway.Config {
		o := base
		o.HeapBytes = h
		return beltway.Appel(o)
	}, bench, env)
	if err != nil {
		log.Fatal(err)
	}
	o := base
	o.HeapBytes = min * 2

	configs := []beltway.Config{
		beltway.Appel(o),
		beltway.XX(10, o),
		beltway.XX100(10, o),
		beltway.XX(33, o),
		beltway.XX100(33, o),
	}

	fmt.Printf("MMU for %s at %.2f MB (2x Appel min heap)\n", bench.Name, float64(o.HeapBytes)/(1<<20))
	fmt.Println("cells: minimum mutator utilization over windows of the given length")
	fmt.Println()

	type row struct {
		name     string
		maxPause float64
		curve    beltway.MMUCurve
	}
	var rows []row
	var total float64
	for _, cfg := range configs {
		res, err := beltway.Run(cfg, bench, env)
		if err != nil {
			log.Fatal(err)
		}
		if res.OOM {
			fmt.Printf("%s: OOM\n", cfg.Name)
			continue
		}
		total = res.TotalTime
		rows = append(rows, row{cfg.Name, res.MaxPause, beltway.ComputeMMU(res, 64)})
	}

	// Shared log-spaced window axis.
	var windows []float64
	for i := 0; i < 10; i++ {
		windows = append(windows, total/3*math.Pow(3e-4, float64(9-i)/9))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "window (ms)\t")
	for _, wd := range windows {
		fmt.Fprintf(w, "%.2f\t", wd/733e3)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t", r.name)
		for _, wd := range windows {
			fmt.Fprintf(w, "%.2f\t", r.curve.At(wd))
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println("\nmax pause (ms):")
	for _, r := range rows {
		fmt.Printf("  %-20s %.3f\n", r.name, r.maxPause/733e3)
	}
	fmt.Println("\nHigher utilization at smaller windows = better responsiveness;")
	fmt.Println("the x-intercept of each curve is that collector's maximum pause.")
}
