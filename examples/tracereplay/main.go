// Tracereplay: trace-driven collector evaluation. Record one run of a
// workload as a mutator event stream, then replay the identical stream
// against several collector configurations — the methodology GC
// researchers use to compare policies on exactly the same input.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"beltway"
)

func main() {
	const heap = 1 << 20 // 1 MB simulated heap
	o := beltway.Options{HeapBytes: heap, FrameBytes: 8 << 10}

	// 1. Record: run a small program once with a recorder attached.
	tr := beltway.NewTrace()
	{
		types := beltway.NewTypes()
		col, err := beltway.New(beltway.XX100(25, o), types)
		if err != nil {
			log.Fatal(err)
		}
		m := beltway.NewMutator(col)
		m.SetRecorder(tr)
		if err := m.Run(func() { program(m, types) }); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Serialize and restore, as a tool pipeline would.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := beltway.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded trace: %d bytes\n\n", restored.Len())

	// 3. Replay against every collector family on the identical input.
	configs := []beltway.Config{
		beltway.SemiSpace(o),
		beltway.Appel(o),
		beltway.FixedNursery(25, o),
		beltway.XX(25, o),
		beltway.XX100(25, o),
		beltway.OlderFirst(25, o),
		beltway.OlderFirstMix(25, o),
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "collector\tGCs\tcopied KB\tremset inserts\tGC time %")
	for _, cfg := range configs {
		types := beltway.NewTypes()
		col, err := beltway.New(cfg, types)
		if err != nil {
			log.Fatal(err)
		}
		m := beltway.NewMutator(col)
		if err := beltway.ReplayTrace(restored, m); err != nil {
			fmt.Fprintf(w, "%s\tfailed: %v\t\t\t\n", cfg.Name, err)
			continue
		}
		c := col.Clock().Counters
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f%%\n",
			cfg.Name, col.Collections(), c.BytesCopied/1024,
			c.RemsetInserts, 100*col.Clock().GCFraction())
	}
	w.Flush()
	fmt.Println("\nSame mutator input, different policies: the copied volume and")
	fmt.Println("remembered-set traffic are pure collector-policy effects.")
}

// program is the workload being traced: an order-processing loop with a
// long-lived index, medium-lived orders and short-lived line items.
func program(m *beltway.Mutator, types *beltway.Types) {
	order := types.DefineScalar("order", 2, 3)
	line := types.DefineScalar("line", 1, 2)
	index := types.DefineRefArray("index")

	idx := m.AllocGlobal(index, 64)
	var ring []beltway.Handle
	for i := 0; i < 12000; i++ {
		m.Push()
		o := m.Alloc(order, 0)
		m.SetData(o, 0, uint32(i))
		prev := beltway.NilHandle
		for l := 0; l < 3; l++ {
			ln := m.Alloc(line, 0)
			m.SetData(ln, 0, uint32(l))
			if prev != beltway.NilHandle {
				m.SetRef(ln, 0, prev)
			}
			prev = ln
		}
		m.SetRef(o, 0, prev)
		m.SetRef(idx, i%64, o)
		kept := m.Keep(o)
		m.Pop()

		ring = append(ring, kept)
		if len(ring) > 200 {
			m.Release(ring[0])
			ring = ring[1:]
		}
		m.Work(5)
	}
}
