package beltway_test

import (
	"fmt"

	"beltway"
)

// ExampleNew builds the paper's headline collector, Beltway 25.25.100,
// and runs a small allocation workload on it.
func ExampleNew() {
	types := beltway.NewTypes()
	col, err := beltway.New(beltway.XX100(25, beltway.Options{
		HeapBytes:  1 << 20,
		FrameBytes: 8 << 10,
	}), types)
	if err != nil {
		panic(err)
	}
	m := beltway.NewMutator(col)
	pair := types.DefineScalar("pair", 2, 0)
	leaf := types.DefineScalar("leaf", 0, 1)

	_ = m.Run(func() {
		root := m.Alloc(pair, 0)
		l := m.Alloc(leaf, 0)
		m.SetData(l, 0, 7)
		m.SetRef(root, 0, l)
		m.Collect(true) // objects move; handles stay valid
		fmt.Println(m.GetData(m.GetRef(root, 0), 0))
	})
	// Output: 7
}

// ExampleConfig_validate shows that configurations are plain data: a
// bespoke three-belt collector is a struct literal.
func ExampleConfig() {
	cfg := beltway.Config{
		Name: "custom 10.30.100",
		Belts: []beltway.BeltSpec{
			{IncrementFrac: 0.10, MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: 0.30, PromoteTo: 2},
			{IncrementFrac: 1.00, PromoteTo: 2},
		},
		HeapBytes:  1 << 20,
		FrameBytes: 8 << 10,
	}
	fmt.Println(cfg.Validate())
	// Output: <nil>
}

// ExampleParseConfig parses the paper's command-line spellings.
func ExampleParseConfig() {
	o := beltway.Options{HeapBytes: 1 << 20, FrameBytes: 8 << 10}
	for _, spec := range []string{"25.25.100", "appel", "bof:25", "25.25.mos"} {
		cfg, err := beltway.ParseConfig(spec, o)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s -> %s (%d belts)\n", spec, cfg.Name, len(cfg.Belts))
	}
	// Output:
	// 25.25.100 -> Beltway 25.25.100 (3 belts)
	// appel -> Appel (2 belts)
	// bof:25 -> BOF 25 (2 belts)
	// 25.25.mos -> Beltway 25.25.MOS (3 belts)
}

// ExampleRun measures a bundled benchmark on a configuration.
func ExampleRun() {
	env := beltway.EnvForScale(0.1)
	res, err := beltway.Run(
		beltway.XX100(25, beltway.Options{HeapBytes: 1 << 20, FrameBytes: env.FrameBytes}),
		beltway.GetBenchmark("jess"), env)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.OOM, res.Collections > 0, res.GCFraction() < 1)
	// Output: false true true
}
