// Package beltway is a Go reproduction of "Beltway: Getting Around
// Garbage Collection Gridlock" (Blackburn, Jones, McKinley, Moss,
// PLDI 2002): a garbage collection framework that generalizes copying
// collection with belts of FIFO increments, and — via configuration
// alone — reproduces semi-space, Appel-style generational, older-first
// and older-first-mix collectors as well as the paper's new Beltway X.X
// and Beltway X.X.100 designs.
//
// The collectors manage a simulated word-addressed heap (Go's own GC
// manages Go values, so the managed heap is built from first principles:
// frames, object headers, bump allocation, Cheney copying); a
// deterministic cost model stands in for wall-clock time. See DESIGN.md
// for the architecture and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	types := beltway.NewTypes()
//	col, _ := beltway.New(beltway.XX100(25, beltway.Options{
//		HeapBytes:  64 << 20,
//		FrameBytes: 16 << 10,
//	}), types)
//	m := beltway.NewMutator(col)
//	node := types.DefineScalar("node", 1, 2)
//	_ = m.Run(func() {
//		h := m.Alloc(node, 0)
//		m.SetData(h, 0, 42)
//	})
//
// The examples/ directory contains complete programs, cmd/beltway is the
// command-line runner, and cmd/experiments regenerates every table and
// figure of the paper's evaluation.
package beltway

import (
	"io"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/generational"
	"beltway/internal/harness"
	"beltway/internal/heap"
	"beltway/internal/mmu"
	"beltway/internal/stats"
	"beltway/internal/trace"
	"beltway/internal/vm"
	"beltway/internal/workload"
)

// Core configuration types.
type (
	// Config describes a complete Beltway collector configuration.
	Config = core.Config
	// BeltSpec configures one belt of a Config.
	BeltSpec = core.BeltSpec
	// Options carries heap size, frame size and modelled physical memory.
	Options = core.Options
	// BarrierKind selects the frame or boundary write barrier.
	BarrierKind = core.BarrierKind
	// CostModel maps mutator and collector work to abstract time.
	CostModel = stats.CostModel
)

// Barrier kinds.
const (
	FrameBarrier    = core.FrameBarrier
	BoundaryBarrier = core.BoundaryBarrier
)

// Runtime types.
type (
	// Collector is a configured Beltway heap (implements the collector
	// interface shared with the generational baselines).
	Collector = core.Heap
	// Types is the object-layout registry shared by a collector and its
	// mutator.
	Types = heap.Registry
	// TypeDesc describes one object layout.
	TypeDesc = heap.TypeDesc
	// Mutator is the handle-based API for building and mutating object
	// graphs on a collector.
	Mutator = vm.Mutator
	// Handle is a stable, collection-safe object reference.
	Handle = gc.Handle
	// Addr is a raw simulated heap address (advanced use only; addresses
	// move at collections).
	Addr = heap.Addr
)

// NilHandle is the empty Handle.
const NilHandle = gc.NilHandle

// ErrOutOfMemory is the sentinel wrapped by allocation failures; use
// errors.Is to detect runs that did not fit their heap.
var ErrOutOfMemory = gc.ErrOutOfMemory

// NewTypes creates an empty type registry.
func NewTypes() *Types { return heap.NewRegistry() }

// New instantiates a collector from a configuration.
func New(cfg Config, types *Types) (*Collector, error) { return core.New(cfg, types) }

// NewMutator wraps a collector in the mutator facade.
func NewMutator(c *Collector) *Mutator { return vm.New(c) }

// DefaultCosts returns the calibrated default cost model.
func DefaultCosts() CostModel { return stats.DefaultCosts() }

// Preset configurations (paper §3.1, §3.2). Percentages are increment
// sizes relative to usable memory.

// SemiSpace returns the Beltway semi-space configuration (BSS).
func SemiSpace(o Options) Config { return collectors.BSS(o) }

// BA2 returns Beltway 100.100, the Appel-style two-generation
// configuration of Beltway.
func BA2(o Options) Config { return collectors.BA2(o) }

// XX returns Beltway X.X: incremental generational, not complete.
func XX(x int, o Options) Config { return collectors.XX(x, o) }

// XX100 returns Beltway X.X.100: incremental and complete.
func XX100(x int, o Options) Config { return collectors.XX100(x, o) }

// XY returns the two-belt Beltway with distinct increment sizes.
func XY(x, y int, o Options) Config { return collectors.XY(x, y, o) }

// XXMOS returns Beltway X.X.MOS: the paper's future-work configuration
// with a Mature Object Space (train algorithm) top belt — complete
// without full-heap collections.
func XXMOS(x int, o Options) Config { return collectors.XXMOS(x, o) }

// WithCardBarrier switches a configuration to card marking instead of
// remembered sets (the alternative §5 discusses).
func WithCardBarrier(cfg Config) Config { return collectors.WithCardBarrier(cfg) }

// WithLOS enables a large object space: objects larger than threshold
// bytes are allocated in non-moving frame spans and mark-swept at full
// collections. (The paper's GCTk had no LOS; this is an extension.)
func WithLOS(cfg Config, threshold int) Config {
	cfg.LOSThresholdBytes = threshold
	return cfg
}

// OlderFirst returns the BOF (windowed older-first) configuration.
func OlderFirst(window int, o Options) Config { return collectors.BOF(window, o) }

// OlderFirstMix returns the BOFM configuration.
func OlderFirstMix(incr int, o Options) Config { return collectors.BOFM(incr, o) }

// Appel returns the paper's baseline Appel-style generational collector
// (boundary barrier, fixed half-heap reserve).
func Appel(o Options) Config { return generational.Appel(o) }

// FixedNursery returns the classic fixed-size-nursery generational
// baseline.
func FixedNursery(pct int, o Options) Config { return generational.Fixed(pct, o) }

// ParseConfig builds a configuration from its command-line spelling
// ("25.25.100", "appel", "bof:10", ...).
func ParseConfig(spec string, o Options) (Config, error) { return collectors.Parse(spec, o) }

// Workloads and measurement.

type (
	// Benchmark is one of the six SPEC-analog workloads.
	Benchmark = workload.Benchmark
	// Env fixes frame size, physical memory, scale and seed for runs.
	Env = harness.Env
	// Result is one measured run.
	Result = harness.Result
	// MMUCurve is a minimum-mutator-utilization curve.
	MMUCurve = mmu.Curve
)

// Benchmarks returns the six-benchmark suite in paper order.
func Benchmarks() []*Benchmark { return workload.All() }

// GetBenchmark returns a benchmark by name ("jess", "raytrace", "db",
// "javac", "jack", "pseudojbb"), or nil.
func GetBenchmark(name string) *Benchmark { return workload.Get(name) }

// EnvForScale returns the standard environment for a workload scale.
func EnvForScale(scale float64) Env { return harness.EnvForScale(scale) }

// Run executes a benchmark on a configuration and reports the
// measurements.
func Run(cfg Config, b *Benchmark, env Env) (*Result, error) {
	return harness.RunOne(cfg, b, env)
}

// FindMinHeap binary-searches the smallest completing heap size for a
// configuration family.
func FindMinHeap(mk func(heapBytes int) Config, b *Benchmark, env Env) (int, error) {
	return harness.FindMinHeap(mk, b, env)
}

// Trace is a recorded mutator event stream that can be replayed against
// any collector configuration (trace-driven GC evaluation).
type Trace = trace.Trace

// NewTrace returns an empty trace; attach it with Mutator.SetRecorder.
func NewTrace() *Trace { return trace.NewTrace() }

// ReplayTrace executes a recorded trace against a fresh mutator.
func ReplayTrace(t *Trace, m *Mutator) error { return trace.Replay(t, m) }

// ReadTrace deserializes a trace written with Trace.WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.ReadFrom(r) }

// ComputeMMU samples a result's minimum-mutator-utilization curve.
func ComputeMMU(r *Result, points int) MMUCurve { return r.MMU(points) }
