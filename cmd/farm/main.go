// Command farm runs experiment grids over a pool of worker OS processes
// and records every completed run in an append-only, hash-chained ledger
// that can be audited and replayed later.
//
// Subcommands:
//
//	farm run    -out DIR [-collectors ... -benchmarks ... -factors ...]
//	farm verify -out DIR [-replay N]
//	farm report -out DIR
//	farm worker               (internal: spawned by `farm run`)
//
// A worker crash — panic, OOM kill, hang — fails only its own job, which
// is requeued onto a respawned worker; a killed orchestrator rerun with
// -resume picks up from the checkpoint and ledger with no duplicated or
// lost records:
//
//	farm run -out results -collectors appel,25.25.100 -benchmarks jess,db \
//	         -factors 1.5,2,3 -scale 0.25 -workers 4
//	farm run -out results ... -resume       # after a crash or kill
//	farm verify -out results -replay 3      # chain + digests + re-execution
//	farm report -out results                # tables from verified records only
//
// verify re-checks the ledger's hash chain, re-hashes every run artifact
// against its ledger digest, and with -replay N re-executes N sampled
// runs, requiring byte-identical results.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"beltway/internal/farm"
	"beltway/internal/harness"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "run":
		runMain(args)
	case "worker":
		workerMain(args)
	case "verify":
		verifyMain(args)
	case "report":
		reportMain(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: farm run|verify|report|worker [flags] (see each subcommand's -h)")
	os.Exit(2)
}

func runMain(args []string) {
	fs := flag.NewFlagSet("farm run", flag.ExitOnError)
	var (
		out        = fs.String("out", "", "output directory for ledger, checkpoint and run artifacts (required)")
		colSpecs   = fs.String("collectors", "appel,25.25.100", "comma-separated collector specs (collectors.Parse syntax)")
		benchNames = fs.String("benchmarks", "jess", "comma-separated benchmark names")
		factors    = fs.String("factors", "2,3", "comma-separated heap factors (multiples of each benchmark's Appel min heap)")
		scale      = fs.Float64("scale", 1.0, "workload scale")
		seed       = fs.Int64("seed", workload.DefaultParams().Seed, "workload PRNG seed")
		budget     = fs.Float64("budget", 0, "per-run cost budget in nominal seconds of simulated time (0 = none)")
		workers    = fs.Int("workers", 2, "worker processes")
		resume     = fs.Bool("resume", false, "resume from -out's checkpoint and ledger")
		retries    = fs.Int("retries", 2, "requeues per crashed job (0 or -1 = none)")
		deadline   = fs.Duration("deadline", 0, "per-job wall clock before a worker is presumed hung and killed (0 = none)")
		crashFirst = fs.Int("crash-worker", 0, "make the first worker SIGKILL itself on its Nth job (fault-injection demo; 0 = off)")
		metricsOut = fs.String("metrics-out", "", "write farm counters in Prometheus text exposition format")
		verbose    = fs.Bool("v", false, "print per-event progress")
	)
	fs.Parse(args)
	if *out == "" {
		fatalf("run: -out is required")
	}

	env := harness.EnvForScale(*scale)
	env.Seed = *seed
	if *budget > 0 {
		env.CostBudget = *budget * stats.CyclesPerSecond
	}
	grid := farm.Grid{
		Collectors:  splitList(*colSpecs),
		Benchmarks:  splitList(*benchNames),
		HeapFactors: nil,
		Env:         env,
	}
	for _, f := range splitList(*factors) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fatalf("run: -factors: %v", err)
		}
		grid.HeapFactors = append(grid.HeapFactors, v)
	}

	exe, err := os.Executable()
	if err != nil {
		fatalf("run: %v", err)
	}
	workerCmd := func(spawn int) *exec.Cmd {
		wargs := []string{"worker"}
		if *crashFirst > 0 && spawn == 0 {
			wargs = append(wargs, "-die-after", strconv.Itoa(*crashFirst))
		}
		return exec.Command(exe, wargs...)
	}

	reg := telemetry.NewRegistry()
	cfg := farm.Config{
		Grid:          grid,
		OutDir:        *out,
		Workers:       *workers,
		Resume:        *resume,
		Retries:       *retries,
		Deadline:      *deadline,
		WorkerCommand: workerCmd,
		Metrics:       telemetry.NewFarmMetrics(reg),
	}
	if *retries <= 0 {
		cfg.Retries = -1 // farm.Config: negative disables, 0 means default
	}
	if *verbose {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	sum, err := farm.Run(cfg)
	if err != nil {
		fatalf("run: %v", err)
	}
	if *metricsOut != "" {
		f, ferr := os.Create(*metricsOut)
		if ferr != nil {
			fatalf("run: -metrics-out: %v", ferr)
		}
		if err := reg.WritePrometheus(f, ""); err != nil {
			fatalf("run: -metrics-out: %v", err)
		}
		f.Close()
	}
	fmt.Printf("farm: %d job(s): %d completed, %d failed, %d resumed; %d worker spawn(s), %d crash(es); ledger holds %d entr%s\n",
		sum.Jobs, sum.Completed, sum.Failed, sum.Resumed,
		sum.WorkerSpawns, sum.WorkerCrashes,
		sum.LedgerEntries, pluralIES(sum.LedgerEntries))
	if sum.Invalidated > 0 {
		fmt.Printf("farm: %d stale checkpoint record(s) were invalidated and re-executed\n", sum.Invalidated)
	}
	if sum.Failed > 0 {
		os.Exit(1)
	}
}

func workerMain(args []string) {
	fs := flag.NewFlagSet("farm worker", flag.ExitOnError)
	dieAfter := fs.Int("die-after", 0, "SIGKILL self on the Nth request (fault-injection demo; 0 = off)")
	fs.Parse(args)
	if err := farm.ServeWorker(os.Stdin, os.Stdout, farm.WorkerOpts{DieAfter: *dieAfter}); err != nil {
		fatalf("worker: %v", err)
	}
}

func verifyMain(args []string) {
	fs := flag.NewFlagSet("farm verify", flag.ExitOnError)
	out := fs.String("out", "", "farm output directory (required)")
	replay := fs.Int("replay", 0, "re-execute up to N sampled runs and require byte-identical results")
	verbose := fs.Bool("v", false, "print per-entry progress")
	fs.Parse(args)
	if *out == "" {
		fatalf("verify: -out is required")
	}
	var progress func(string)
	if *verbose {
		progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	res, err := farm.Verify(*out, *replay, progress)
	if err != nil {
		fatalf("verify: FAIL: %v", err)
	}
	fmt.Printf("farm verify: PASS: %d entr%s chained and digest-checked, %d replayed byte-identically\n",
		res.Entries, pluralIES(res.Entries), res.Replayed)
	if res.BinaryMismatches > 0 {
		fmt.Printf("farm verify: note: %d entr%s from a different binary (chain still verified; replay skipped them)\n",
			res.BinaryMismatches, pluralIES(res.BinaryMismatches))
	}
}

func reportMain(args []string) {
	fs := flag.NewFlagSet("farm report", flag.ExitOnError)
	out := fs.String("out", "", "farm output directory (required)")
	output := fs.String("o", "", "write the report here instead of stdout")
	fs.Parse(args)
	if *out == "" {
		fatalf("report: -out is required")
	}
	rep, err := farm.Report(*out)
	if err != nil {
		fatalf("report: %v", err)
	}
	if *output == "" {
		fmt.Print(rep)
		return
	}
	if err := os.WriteFile(*output, []byte(rep), 0o644); err != nil {
		fatalf("report: %v", err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func pluralIES(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "farm: "+format+"\n", args...)
	os.Exit(1)
}
