// Command bench runs the simulator's benchmark suites (heap, core,
// markregion, remset, trace, telemetry, workload) through
// testing.Benchmark and writes the
// results as machine-readable JSON, so successive runs can be diffed to
// catch performance regressions.
//
// Usage:
//
//	go run ./cmd/bench                 # full run, writes BENCH_<date>.json
//	go run ./cmd/bench -quick          # 1 iteration/benchmark (CI smoke)
//	go run ./cmd/bench -suite heap,core -benchtime 100ms -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"beltway/internal/bench"
	"beltway/internal/harness"
)

// Result is one benchmark measurement in the JSON report.
type Result struct {
	Suite       string  `json:"suite"`
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// Extra carries custom b.ReportMetric units (e.g. the collection
	// benchmarks' copied-bytes/op, which records GC copy traffic so the
	// mark-region substrate's copy savings are diffable across runs).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level BENCH_<date>.json document.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	quick := flag.Bool("quick", false, "run each benchmark for a single iteration (CI smoke)")
	suites := flag.String("suite", "all", "comma-separated suites to run (heap,core,markregion,remset,trace,telemetry,workload,shard) or 'all'")
	benchtime := flag.String("benchtime", "1s", "per-benchmark run time or iteration count (e.g. 100ms, 10x)")
	out := flag.String("o", "", "output path (default BENCH_<date>.json in the current directory)")
	mutators := flag.Int("mutators", 0,
		"cap the shard suite's scaling curve at this mutator width (0 = full default curve)")
	adapt := flag.String("adapt", "",
		"run the single-mutator server benchmarks with the adaptive policy controller on this objective (slo | mmu | footprint | throughput)")
	compare := flag.Bool("compare", false,
		"compare two reports instead of running: bench -compare OLD.json NEW.json")
	threshold := flag.Float64("threshold", 5,
		"with -compare, regression tolerance in percent; worse-than-threshold deltas exit non-zero")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two report paths, have %d", flag.NArg()))
		}
		regressions, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fatal(err)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d regression(s) beyond %.1f%%\n", regressions, *threshold)
			os.Exit(1)
		}
		return
	}
	if *mutators < 0 {
		fatal(fmt.Errorf("-mutators must be at least 1 (got %d)", *mutators))
	}
	if *mutators > 0 {
		var counts []int
		for _, n := range bench.ShardCounts {
			if n <= *mutators {
				counts = append(counts, n)
			}
		}
		bench.ShardCounts = counts
	}
	// -adapt applies only to the flat single-mutator server benchmarks
	// (-mutators here caps the shard suite's curve, a different axis), so
	// validate it as a single-mutator environment.
	if err := harness.ValidateEnv(harness.Env{Policy: *adapt, Mutators: 1}, false); err != nil {
		fatal(err)
	}
	bench.ServerPolicy = *adapt

	// testing.Benchmark reads the test.* flags; register them and force
	// allocation reporting so B/op and allocs/op are always recorded.
	testing.Init()
	bt := *benchtime
	if *quick {
		bt = "1x"
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		fatal(err)
	}
	if err := flag.Set("test.benchmem", "true"); err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	if *suites != "all" {
		for _, s := range strings.Split(*suites, ",") {
			want[strings.TrimSpace(s)] = true
		}
		for s := range want {
			if !validSuite(s) {
				fatal(fmt.Errorf("unknown suite %q (have %s)", s, strings.Join(bench.Suites(), ",")))
			}
		}
	}

	rep := Report{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: bt,
	}
	for _, e := range bench.All() {
		if len(want) > 0 && !want[e.Suite] {
			continue
		}
		fmt.Printf("%-10s %-22s ", e.Suite, e.Name)
		r := testing.Benchmark(e.Fn)
		res := Result{
			Suite:       e.Suite,
			Name:        e.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = (float64(r.Bytes) * float64(r.N) / 1e6) / r.T.Seconds()
		}
		if len(r.Extra) > 0 {
			res.Extra = r.Extra
		}
		fmt.Printf("%12.1f ns/op %10d B/op %8d allocs/op\n",
			res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		rep.Benchmarks = append(rep.Benchmarks, res)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
}

func validSuite(s string) bool {
	for _, v := range bench.Suites() {
		if s == v {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
