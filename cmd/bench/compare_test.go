package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldRep := Report{Date: "2026-01-01", Benchtime: "1s", Benchmarks: []Result{
		{Suite: "core", Name: "Alloc", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2},
		{Suite: "server", Name: "Beltway", NsPerOp: 1000,
			Extra: map[string]float64{"req/s": 5000, "p99-cost/op": 2000}},
		{Suite: "shard", Name: "Scale8", NsPerOp: 500,
			Extra: map[string]float64{"agg-B-per-cost/op": 10}},
		{Suite: "trace", Name: "Removed", NsPerOp: 10},
	}}
	newRep := Report{Date: "2026-01-02", Benchtime: "1s", Benchmarks: []Result{
		// ns/op regresses 50%.
		{Suite: "core", Name: "Alloc", NsPerOp: 150, BytesPerOp: 64, AllocsPerOp: 2},
		// req/s is sign-aware: dropping is a regression even though the
		// value got smaller; p99 cost improving is not.
		{Suite: "server", Name: "Beltway", NsPerOp: 1000,
			Extra: map[string]float64{"req/s": 2500, "p99-cost/op": 1000}},
		// agg-B-per-cost/op rising is an improvement.
		{Suite: "shard", Name: "Scale8", NsPerOp: 500,
			Extra: map[string]float64{"agg-B-per-cost/op": 20}},
		{Suite: "heap", Name: "Added", NsPerOp: 10},
	}}
	oldPath := writeReport(t, dir, "old.json", oldRep)
	newPath := writeReport(t, dir, "new.json", newRep)

	var buf strings.Builder
	regressions, err := runCompare(&buf, oldPath, newPath, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (ns/op up, req/s down)\n%s", regressions, out)
	}

	wantLine := func(sub ...string) {
		t.Helper()
		for _, line := range strings.Split(out, "\n") {
			ok := true
			for _, s := range sub {
				if !strings.Contains(line, s) {
					ok = false
					break
				}
			}
			if ok {
				return
			}
		}
		t.Fatalf("no output line contains all of %q\n%s", sub, out)
	}
	wantLine("core/Alloc", "ns/op", "REGRESSION")
	wantLine("server/Beltway", "req/s", "REGRESSION")
	wantLine("server/Beltway", "p99-cost/op", "improved")
	wantLine("shard/Scale8", "agg-B-per-cost/op", "improved")
	wantLine("heap/Added", "(new)")
	wantLine("trace/Removed", "(gone)")
}

func TestRunCompareWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	rep := Report{Benchmarks: []Result{
		{Suite: "core", Name: "Alloc", NsPerOp: 100},
	}}
	rep2 := Report{Benchmarks: []Result{
		{Suite: "core", Name: "Alloc", NsPerOp: 103},
	}}
	oldPath := writeReport(t, dir, "old.json", rep)
	newPath := writeReport(t, dir, "new.json", rep2)
	var buf strings.Builder
	regressions, err := runCompare(&buf, oldPath, newPath, 5)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("3%% delta under a 5%% threshold counted as regression\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("unexpected REGRESSION mark:\n%s", buf.String())
	}
}

func TestRunCompareNoCommonBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Result{
		{Suite: "core", Name: "A", NsPerOp: 1},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Result{
		{Suite: "core", Name: "B", NsPerOp: 1},
	}})
	var buf strings.Builder
	if _, err := runCompare(&buf, oldPath, newPath, 5); err == nil {
		t.Fatal("disjoint reports compared without error")
	}
}
