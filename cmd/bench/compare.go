package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// runCompare diffs two BENCH_<date>.json reports benchstat-style: one
// row per (suite, benchmark, metric) present in both, with the old and
// new values and the percentage delta. For every metric, smaller is
// better (ns/op, B/op, allocs/op and the custom extras are all costs;
// throughput-style extras are inverted below). Deltas whose magnitude
// exceeds threshold percent are flagged, and regressions — the new
// value worse than the old — are counted into the return value so the
// caller can exit non-zero.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) (regressions int, err error) {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return 0, err
	}
	oldBy := map[string]Result{}
	for _, r := range oldRep.Benchmarks {
		oldBy[r.Suite+"/"+r.Name] = r
	}

	fmt.Fprintf(w, "old: %s (%s, benchtime %s)\n", oldPath, oldRep.Date, oldRep.Benchtime)
	fmt.Fprintf(w, "new: %s (%s, benchtime %s)\n\n", newPath, newRep.Date, newRep.Benchtime)
	fmt.Fprintf(w, "%-34s %-18s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")

	matched := 0
	for _, nr := range newRep.Benchmarks {
		key := nr.Suite + "/" + nr.Name
		or, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "%-34s %-18s %14s %14s %9s\n", key, "-", "-", "(new)", "")
			continue
		}
		matched++
		for _, m := range metricsOf(or, nr) {
			delta := pctDelta(m.old, m.new)
			mark := ""
			if math.Abs(delta) > threshold {
				worse := m.new > m.old
				if m.higherIsBetter {
					worse = m.new < m.old
				}
				if worse {
					mark = "  REGRESSION"
					regressions++
				} else {
					mark = "  improved"
				}
			}
			fmt.Fprintf(w, "%-34s %-18s %14.2f %14.2f %+8.1f%%%s\n",
				key, m.name, m.old, m.new, delta, mark)
		}
	}
	for key := range oldBy {
		if !hasBench(newRep, key) {
			fmt.Fprintf(w, "%-34s %-18s %14s %14s %9s\n", key, "-", "(gone)", "-", "")
		}
	}
	if matched == 0 {
		return regressions, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	return regressions, nil
}

// metric is one comparable measurement of a benchmark pair.
type metric struct {
	name           string
	old, new       float64
	higherIsBetter bool
}

// metricsOf pairs up the standard metrics and every Extra key the two
// results share, in a stable order. Zero-valued allocation metrics are
// skipped (not all benchmarks allocate); throughput extras (per-cost
// rates, MB/s) score higher-is-better.
func metricsOf(or, nr Result) []metric {
	out := []metric{{name: "ns/op", old: or.NsPerOp, new: nr.NsPerOp}}
	if or.BytesPerOp != 0 || nr.BytesPerOp != 0 {
		out = append(out, metric{name: "B/op", old: float64(or.BytesPerOp), new: float64(nr.BytesPerOp)})
	}
	if or.AllocsPerOp != 0 || nr.AllocsPerOp != 0 {
		out = append(out, metric{name: "allocs/op", old: float64(or.AllocsPerOp), new: float64(nr.AllocsPerOp)})
	}
	if or.MBPerSec != 0 && nr.MBPerSec != 0 {
		out = append(out, metric{name: "MB/s", old: or.MBPerSec, new: nr.MBPerSec, higherIsBetter: true})
	}
	var extras []string
	for k := range nr.Extra {
		if _, ok := or.Extra[k]; ok {
			extras = append(extras, k)
		}
	}
	sort.Strings(extras)
	for _, k := range extras {
		out = append(out, metric{
			name: k, old: or.Extra[k], new: nr.Extra[k],
			higherIsBetter: higherIsBetter(k),
		})
	}
	return out
}

// higherIsBetter classifies an Extra metric by its unit name: rates
// (throughput) improve upward, everything else (costs, counts, bytes)
// improves downward.
func higherIsBetter(name string) bool {
	switch name {
	case "agg-B-per-cost/op", "MB/s", "req/s":
		return true
	}
	return false
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old * 100
}

func hasBench(rep *Report, key string) bool {
	for _, r := range rep.Benchmarks {
		if r.Suite+"/"+r.Name == key {
			return true
		}
	}
	return false
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
