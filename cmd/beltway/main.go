// Command beltway runs one benchmark on one collector configuration and
// reports detailed statistics — the command-line interface the paper
// alludes to ("Beltway configurations, selected by command line
// options").
//
// Usage:
//
//	beltway -gc 25.25.100 -bench jess -heap 2.0
//	beltway -gc appel -bench pseudojbb -heap 1.5 -mmu
//	beltway -gc bof:25 -bench javac -heapMB 4
//
// The -gc flag accepts: ss | appel | appel3 | fixed:N | bofm:N | bof:N |
// X.X | X.X.100 (e.g. 25.25, 33.33.100). -heap gives the heap as a
// multiple of the benchmark's minimum (found by binary search); -heapMB
// sets it absolutely.
//
// -server replaces the benchmark with the request/response server
// workload (internal/server): per-request latencies on the cost-unit
// clock, per-phase percentile tables, and an optional SLO verdict:
//
//	beltway -gc 25.25 -server -heap 3
//	beltway -gc appel -server -heap 3 -slo p99=10e3,max=5e6
//
// In server mode -heap multiplies the store's estimated live size (no
// min-heap search) and -seed seeds the request stream.
package main

import (
	"flag"
	"fmt"
	"os"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/harness"
	"beltway/internal/server"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/workload"
)

func main() {
	var (
		gcName  = flag.String("gc", "25.25.100", "collector configuration")
		bench   = flag.String("bench", "jess", "benchmark name")
		heapX   = flag.Float64("heap", 2.0, "heap size as a multiple of the min heap")
		heapMB  = flag.Float64("heapMB", 0, "absolute heap size in MB (overrides -heap)")
		scale   = flag.Float64("scale", 1.0, "workload scale")
		seed    = flag.Int64("seed", workload.DefaultParams().Seed, "PRNG seed")
		frameKB = flag.Int("frame", 0, "frame size in KB (0 = auto from scale)")
		physMB  = flag.Int("physmem", -1, "modelled physical memory in MB (0 = off, -1 = auto)")
		showMMU = flag.Bool("mmu", false, "print the MMU curve")
		preten  = flag.Bool("pretenure", false, "route known-long-lived allocation sites to older belts")
		muts    = flag.Int("mutators", 1,
			"mutator goroutines; >1 shards the run over N private heaps (simulated N-core makespan)")

		serverMode = flag.Bool("server", false,
			"run the request/response server workload instead of -bench")
		sloSpec = flag.String("slo", "",
			"request-latency SLO for -server, e.g. p99=10e3,p99.9=1e6,max=5e6 (cost units; empty = report only)")
		adapt = flag.String("adapt", "",
			"adaptive policy objective: slo | mmu | footprint | throughput, with optional params (e.g. mmu:floor=0.7); empty = static (paper behavior)")

		traceOut = flag.String("trace-out", "",
			"write a Chrome trace_event JSON of the run's GC events")
		metricsOut = flag.String("metrics-out", "",
			"write the run's metrics in Prometheus text exposition format")
		timelineOut = flag.String("timeline", "",
			"write an ASCII heap-composition timeline ('-' for stdout)")
	)
	flag.Parse()

	var b *workload.Benchmark
	if !*serverMode {
		b = workload.Get(*bench)
		if b == nil {
			fatalf("unknown benchmark %q (have: %v)", *bench, workload.Names())
		}
	}
	env := harness.EnvForScale(*scale)
	env.Seed = *seed
	if *frameKB > 0 {
		env.FrameBytes = *frameKB * 1024
	}
	if *physMB >= 0 {
		env.PhysMemBytes = *physMB << 20
	}
	env.Pretenure = *preten
	env.Mutators = *muts
	env.Policy = *adapt
	seedSet, mutatorsSet := false, false // explicit flags, even at defaults
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			seedSet = true
		case "mutators":
			mutatorsSet = true
		}
	})
	// An explicit -mutators forces the sharded runtime in server mode even
	// at 1, so validate against it upfront rather than deep in the run.
	if err := harness.ValidateEnv(env, mutatorsSet && *serverMode); err != nil {
		fatalf("%v", err)
	}

	// Server mode: no min-heap search; -heap multiplies the store's
	// estimated live size, and the request stream rides -seed when set.
	var sc server.Config
	var slo server.SLO
	if *serverMode {
		sc = server.Scaled(*scale)
		if seedSet {
			sc.Seed = *seed
		}
		var perr error
		if slo, perr = server.ParseSLO(*sloSpec); perr != nil {
			fatalf("-slo: %v", perr)
		}
	}

	var heapBytes int
	if *heapMB > 0 {
		heapBytes = int(*heapMB * (1 << 20))
	} else if *serverMode {
		heapBytes = int(float64(sc.EstLiveBytes()) * *heapX)
		heapBytes = (heapBytes/env.FrameBytes + 1) * env.FrameBytes
		fmt.Printf("est. live set: %s MB; running at %s MB (%.2fx)\n",
			harness.FmtMB(sc.EstLiveBytes()), harness.FmtMB(heapBytes), *heapX)
	} else {
		appel := func(h int) core.Config {
			c, err := collectors.Parse("appel", collectors.Options{
				HeapBytes: h, FrameBytes: env.FrameBytes, PhysMemBytes: env.PhysMemBytes})
			if err != nil {
				panic(err)
			}
			return c
		}
		min, err := harness.FindMinHeap(appel, b, env)
		if err != nil {
			fatalf("min-heap search: %v", err)
		}
		heapBytes = int(float64(min) * *heapX)
		heapBytes = (heapBytes / env.FrameBytes) * env.FrameBytes
		fmt.Printf("min heap (Appel): %s MB; running at %s MB (%.2fx)\n",
			harness.FmtMB(min), harness.FmtMB(heapBytes), *heapX)
	}

	config, err := collectors.Parse(*gcName, collectors.Options{
		HeapBytes: heapBytes, FrameBytes: env.FrameBytes, PhysMemBytes: env.PhysMemBytes})
	if err != nil {
		fatalf("%v", err)
	}
	env.Telemetry = true
	var res *harness.Result
	if *serverMode {
		// An explicit -mutators forces the sharded runtime even at 1, so
		// `-mutators 1` demonstrates the flat/sharded replay identity from
		// the command line rather than trivially taking the flat path.
		if mutatorsSet {
			res, err = harness.RunServerSharded(config, sc, slo, env)
		} else {
			res, err = harness.RunServer(config, sc, slo, env)
		}
	} else {
		res, err = harness.RunOne(config, b, env)
	}
	if err != nil {
		fatalf("%v", err)
	}
	printResult(res)
	if res.Policy != nil {
		drift := res.Policy.Drift
		if drift == "" {
			drift = "(none)"
		}
		fmt.Printf("  adaptive policy     %10d decisions (objective %s); knob drift: %s\n",
			res.Policy.Decisions, res.Policy.Objective, drift)
	}
	if res.Server != nil {
		printServerReport(res.Server)
	}
	table := harness.ResultsTable([]*harness.Result{res})
	fmt.Printf("\n%s", table.String())

	runName := fmt.Sprintf("%s / %s", res.Collector, res.Benchmark)
	if *timelineOut != "" && res.Telemetry != nil {
		out := os.Stdout
		if *timelineOut != "-" {
			f, ferr := os.Create(*timelineOut)
			if ferr != nil {
				fatalf("-timeline: %v", ferr)
			}
			defer f.Close()
			out = f
		}
		fmt.Fprintln(out)
		if err := telemetry.WriteTimeline(out, runName, res.Telemetry.Events); err != nil {
			fatalf("-timeline: %v", err)
		}
	}
	if *traceOut != "" && res.Telemetry != nil {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fatalf("-trace-out: %v", ferr)
		}
		defer f.Close()
		if err := telemetry.WriteChromeTrace(f, []telemetry.TraceRun{
			{Name: runName, Pid: 1, Events: res.Telemetry.Events},
		}); err != nil {
			fatalf("-trace-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "beltway: wrote Chrome trace to %s\n", *traceOut)
	}
	if *metricsOut != "" && res.Telemetry != nil {
		agg := telemetry.NewAggregator()
		agg.Add(res.Collector, res.Telemetry)
		f, ferr := os.Create(*metricsOut)
		if ferr != nil {
			fatalf("-metrics-out: %v", ferr)
		}
		defer f.Close()
		if err := agg.WritePrometheus(f); err != nil {
			fatalf("-metrics-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "beltway: wrote Prometheus metrics to %s\n", *metricsOut)
	}
	if *showMMU && !res.OOM {
		curve := res.MMU(24)
		fmt.Printf("\nMMU curve (max pause %.3f ms, throughput %.3f):\n",
			curve.MaxPause/733e3, curve.Throughput)
		fmt.Printf("%12s  %s\n", "window(ms)", "min utilization")
		for _, p := range curve.Points {
			fmt.Printf("%12.3f  %.3f\n", p.Window/733e3, p.Utilization)
		}
	}
}

func printResult(r *harness.Result) {
	if r.OOM {
		fmt.Printf("%s on %s: OUT OF MEMORY at %s MB\n",
			r.Collector, r.Benchmark, harness.FmtMB(r.HeapBytes))
		return
	}
	c := r.Counters
	if r.Mutators > 1 {
		fmt.Printf("\n%s on %s, heap %s MB/mutator, %d mutators (times are simulated %d-core makespan)\n",
			r.Collector, r.Benchmark, harness.FmtMB(r.HeapBytes), r.Mutators, r.Mutators)
	} else {
		fmt.Printf("\n%s on %s, heap %s MB\n", r.Collector, r.Benchmark, harness.FmtMB(r.HeapBytes))
	}
	fmt.Printf("  total time          %10.3f s (nominal)\n", r.TotalTime/733e6)
	fmt.Printf("  gc time             %10.3f s (%.1f%%)\n", r.GCTime/733e6, 100*r.GCFraction())
	ps := stats.SummarizePauses(r.Pauses)
	fmt.Printf("  pauses              %10d (median %.3f ms, p90 %.3f, p95 %.3f, p99 %.3f, max %.3f)\n",
		ps.Count, ps.Median/733e3, ps.P90/733e3, ps.P95/733e3, ps.P99/733e3, ps.Max/733e3)
	fmt.Printf("  collections         %10d (%d full)\n", r.Collections, c.FullCollections)
	fmt.Printf("  allocated           %10.2f MB in %d objects\n",
		float64(c.BytesAllocated)/(1<<20), c.ObjectsAllocated)
	fmt.Printf("  copied              %10.2f MB in %d objects (mark/cons %.3f)\n",
		float64(c.BytesCopied)/(1<<20), c.ObjectsCopied,
		float64(c.BytesCopied)/float64(max64(c.BytesAllocated, 1)))
	fmt.Printf("  pointer stores      %10d (%d slow path, %d remset inserts)\n",
		c.PointerStores, c.BarrierSlowPaths, c.RemsetInserts)
	fmt.Printf("  remset entries @GC  %10d\n", c.RemsetEntriesGC)
	fmt.Printf("  roots scanned       %10d; boot scanned %.2f MB\n",
		c.RootsScanned, float64(c.BootBytesScanned)/(1<<20))
	fmt.Printf("  frames mapped       %10d (%d unmapped); paged alloc %.2f MB\n",
		c.FramesMapped, c.FramesUnmapped, float64(c.PageFaultBytes)/(1<<20))
}

// printServerReport renders the per-phase latency distributions and SLO
// verdicts of a server-mode run (latencies in nominal microseconds).
func printServerReport(rep *server.Report) {
	t := harness.Table{
		Title: "Server phases (request latency, nominal us)",
		Headers: []string{"phase", "requests", "reads", "writes",
			"p50(us)", "p95(us)", "p99(us)", "p99.9(us)", "max(us)", "paused%", "worst-infl"},
	}
	rows := append(append([]server.PhaseReport{}, rep.Phases...), rep.Overall)
	rows[len(rows)-1].Name = "overall"
	for _, p := range rows {
		t.AddRow(p.Name, fmt.Sprint(p.Requests), fmt.Sprint(p.Reads), fmt.Sprint(p.Writes),
			harness.FmtUs(p.Latency.P50), harness.FmtUs(p.Latency.P95),
			harness.FmtUs(p.Latency.P99), harness.FmtUs(p.Latency.P999),
			harness.FmtUs(p.Latency.Max),
			fmt.Sprintf("%.2f", 100*p.PausedFrac),
			fmt.Sprintf("%.1f", p.WorstInflation))
	}
	fmt.Printf("\n%s", t.String())
	if rep.Shards > 1 {
		fmt.Printf("\nmerged over %d serving lanes; store fingerprint %016x\n",
			rep.Shards, rep.StoreChecksum)
	} else {
		fmt.Printf("\nstore fingerprint %016x\n", rep.StoreChecksum)
	}
	if len(rep.Verdicts) > 0 {
		fmt.Println("\nSLO verdicts:")
		for _, v := range rep.Verdicts {
			state := "PASS"
			if !v.Pass {
				state = "FAIL"
			}
			fmt.Printf("  %-5s %-5s actual %12.0f cost units (%s us), bound %12.0f (%s us)\n",
				v.Target.Quantile, state, v.Actual, harness.FmtUs(v.Actual),
				v.Target.Cost, harness.FmtUs(v.Target.Cost))
		}
		if rep.Passed {
			fmt.Println("  SLO: PASS")
		} else {
			fmt.Println("  SLO: FAIL")
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "beltway: "+format+"\n", args...)
	os.Exit(1)
}
