// Command tracebench performs trace-driven collector comparison: record
// a bundled benchmark's mutator event stream once, then replay the
// identical stream against any set of collector configurations. Because
// the input is bit-identical across replays, every difference in the
// report is pure collector policy.
//
// Usage:
//
//	tracebench -bench jess -scale 0.25 -heapMB 2            # record + compare defaults
//	tracebench -bench db -gcs "appel,25.25.100,bof:25"      # choose collectors
//	tracebench -bench javac -record javac.trace             # record to file
//	tracebench -trace javac.trace -gcs "cards:25.25.100"    # replay from file
//	tracebench -bench jess -jobs 8                          # parallel replays
//
// Replays run in parallel on a worker pool (-jobs); the report rows are
// printed in spec order, so output is identical for any -jobs value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/engine"
	"beltway/internal/harness"
	"beltway/internal/heap"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/trace"
	"beltway/internal/vm"
	"beltway/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "jess", "benchmark to record")
		scale     = flag.Float64("scale", 0.25, "workload scale for recording")
		heapMB    = flag.Float64("heapMB", 0, "heap size in MB (0 = 1.5x recorded min)")
		gcs       = flag.String("gcs", "ss,appel,ba2,fixed:25,25.25,25.25.100,25.25.mos,bof:25,bofm:25",
			"comma-separated collector specs to replay against")
		recordTo  = flag.String("record", "", "write the recorded trace to this file and exit")
		replayArg = flag.String("trace", "", "replay this trace file instead of recording")
		seed      = flag.Int64("seed", 1, "PRNG seed for recording")
		jobs      = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"parallel replays (worker pool size); the report order is fixed")

		traceOut = flag.String("trace-out", "",
			"write a Chrome trace_event JSON of every replay's GC events")
		metricsOut = flag.String("metrics-out", "",
			"write per-collector metrics in Prometheus text exposition format")
		timelineOut = flag.String("timeline", "",
			"write an ASCII heap-composition timeline per replay")
	)
	flag.Parse()

	env := harness.EnvForScale(*scale)
	heapBytes := int(*heapMB * (1 << 20))

	var tr *trace.Trace
	switch {
	case *replayArg != "":
		f, err := os.Open(*replayArg)
		if err != nil {
			fatalf("%v", err)
		}
		tr, err = trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("loaded trace %s (%d bytes)\n", *replayArg, tr.Len())
		if heapBytes == 0 {
			fatalf("-heapMB is required when replaying from a file")
		}
	default:
		b := workload.Get(*benchName)
		if b == nil {
			fatalf("unknown benchmark %q (have: %v)", *benchName, workload.Names())
		}
		if heapBytes == 0 {
			mk := func(h int) core.Config {
				c, err := collectors.Parse("appel", collectors.Options{HeapBytes: h, FrameBytes: env.FrameBytes})
				if err != nil {
					panic(err)
				}
				return c
			}
			min, err := harness.FindMinHeap(mk, b, env)
			if err != nil {
				fatalf("min heap search: %v", err)
			}
			heapBytes = min * 3 / 2
		}
		fmt.Printf("recording %s at scale %v in a %.2f MB heap...\n",
			b.Name, *scale, float64(heapBytes)/(1<<20))
		tr = trace.NewTrace()
		types := heap.NewRegistry()
		h, err := core.New(collectors.XX100(25, collectors.Options{
			HeapBytes: heapBytes, FrameBytes: env.FrameBytes}), types)
		if err != nil {
			fatalf("%v", err)
		}
		m := vm.New(h)
		m.SetRecorder(tr)
		ctx := &workload.Ctx{M: m, Types: types, Rng: rand.New(rand.NewSource(*seed)), Scale: *scale}
		if err := m.Run(func() { b.Body(ctx) }); err != nil {
			fatalf("recording failed: %v", err)
		}
		fmt.Printf("trace: %d bytes, %.2f MB allocated\n\n",
			tr.Len(), float64(h.Clock().Counters.BytesAllocated)/(1<<20))
	}

	if *recordTo != "" {
		f, err := os.Create(*recordTo)
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := tr.WriteTo(f); err != nil {
			fatalf("%v", err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *recordTo)
		return
	}

	// Replays are independent — each gets a fresh heap and mutator over
	// the shared read-only trace — so they run in parallel through the
	// engine. A panicking or failing replay degrades to a "failed" row;
	// rows print in spec order regardless of completion order.
	var cfgs []core.Config
	for _, spec := range strings.Split(*gcs, ",") {
		spec = strings.TrimSpace(spec)
		cfg, err := collectors.Parse(spec, collectors.Options{
			HeapBytes: heapBytes, FrameBytes: env.FrameBytes})
		if err != nil {
			fatalf("%v", err)
		}
		cfgs = append(cfgs, cfg)
	}
	type replayRow struct {
		Collections     uint64                 `json:"collections"`
		FullCollections uint64                 `json:"full_collections"`
		CopiedMB        float64                `json:"copied_mb"`
		RemsetInserts   uint64                 `json:"remset_inserts"`
		CardsScanned    uint64                 `json:"cards_scanned"`
		GCFraction      float64                `json:"gc_fraction"`
		MedianPauseMS   float64                `json:"median_pause_ms"`
		P95PauseMS      float64                `json:"p95_pause_ms"`
		P99PauseMS      float64                `json:"p99_pause_ms"`
		MaxPauseMS      float64                `json:"max_pause_ms"`
		Telemetry       *telemetry.RunSnapshot `json:"telemetry,omitempty"`
	}
	eng := engine.New(engine.Config{Workers: *jobs})
	ejobs := make([]engine.Job, len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i]
		ejobs[i] = engine.Job{
			Key: engine.Key{Experiment: "tracebench", Collector: cfg.Name, HeapBytes: heapBytes},
			Run: func() (any, engine.Outcome, error) {
				types := heap.NewRegistry()
				h, err := core.New(cfg, types)
				if err != nil {
					return nil, "", err
				}
				tele := telemetry.NewRun(h.Clock())
				h.SetHooks(tele.Hooks())
				m := vm.New(h)
				if err := trace.Replay(tr, m); err != nil {
					return nil, "", err
				}
				c := h.Clock().Counters
				ps := stats.SummarizePauses(h.Clock().Pauses())
				return replayRow{
					Collections:     c.Collections,
					FullCollections: c.FullCollections,
					CopiedMB:        float64(c.BytesCopied) / (1 << 20),
					RemsetInserts:   c.RemsetInserts,
					CardsScanned:    c.CardsScanned,
					GCFraction:      h.Clock().GCFraction(),
					MedianPauseMS:   ps.Median / 733e3,
					P95PauseMS:      ps.P95 / 733e3,
					P99PauseMS:      ps.P99 / 733e3,
					MaxPauseMS:      ps.Max / 733e3,
					Telemetry:       tele.Snapshot(),
				}, engine.OK, nil
			},
		}
	}
	recs, err := eng.Run(ejobs)
	if err != nil {
		fatalf("%v", err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "collector\tGCs\tfull\tcopied MB\tremset ins\tcards\tGC %\tp50 ms\tp95 ms\tp99 ms\tmax ms")
	agg := telemetry.NewAggregator()
	type namedRun struct {
		name   string
		events []telemetry.Event
	}
	var runs []namedRun
	for i, rec := range recs {
		if rec.Outcome != engine.OK {
			fmt.Fprintf(w, "%s\tfailed: %s\t\t\t\t\t\t\t\t\t\n", cfgs[i].Name, rec.Error)
			continue
		}
		var r replayRow
		if err := json.Unmarshal(rec.Payload, &r); err != nil {
			fmt.Fprintf(w, "%s\tfailed: %v\t\t\t\t\t\t\t\t\t\n", cfgs[i].Name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%d\t%d\t%.1f%%\t%.3f\t%.3f\t%.3f\t%.3f\n",
			cfgs[i].Name, r.Collections, r.FullCollections,
			r.CopiedMB, r.RemsetInserts, r.CardsScanned,
			100*r.GCFraction, r.MedianPauseMS, r.P95PauseMS, r.P99PauseMS, r.MaxPauseMS)
		if r.Telemetry != nil {
			agg.Add(cfgs[i].Name, r.Telemetry)
			runs = append(runs, namedRun{name: cfgs[i].Name, events: r.Telemetry.Events})
		}
	}
	w.Flush()

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("-trace-out: %v", err)
		}
		trs := make([]telemetry.TraceRun, len(runs))
		for i, r := range runs {
			trs[i] = telemetry.TraceRun{Name: r.name, Pid: i + 1, Events: r.events}
		}
		if err := telemetry.WriteChromeTrace(f, trs); err != nil {
			fatalf("-trace-out: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "tracebench: wrote Chrome trace to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatalf("-metrics-out: %v", err)
		}
		if err := agg.WritePrometheus(f); err != nil {
			fatalf("-metrics-out: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "tracebench: wrote Prometheus metrics to %s\n", *metricsOut)
	}
	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			fatalf("-timeline: %v", err)
		}
		for _, r := range runs {
			if err := telemetry.WriteTimeline(f, r.name, r.events); err != nil {
				fatalf("-timeline: %v", err)
			}
			fmt.Fprintln(f)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "tracebench: wrote heap timelines to %s\n", *timelineOut)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracebench: "+format+"\n", args...)
	os.Exit(1)
}
