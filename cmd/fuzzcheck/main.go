// Command fuzzcheck drives the differential oracle from the command
// line: it replays the six bundled workloads (recorded as traces at
// small scale) through every named collector preset, then runs randomized
// script rounds with randomized configurations mixed into the battery,
// and reports any divergence. With -minimize, each divergence is shrunk
// by delta debugging and written to the check package's testdata as a
// reproducer fixture plus a generated regression test.
//
// It also reproduces Go fuzz corpus entries: pass corpus file paths (the
// files `go test -fuzz=FuzzDifferential` leaves under testdata/fuzz or
// the fuzz cache) as arguments.
//
//	fuzzcheck -rounds 200 -seed 1
//	fuzzcheck -minimize testdata/fuzz/FuzzDifferential/<entry>
//
// With -chaos it instead runs the chaos battery: every seed script plus
// -rounds random scripts, each executed fault-free and then under
// -fault-schedules deterministic fault-injection schedules derived from
// -fault-seed, asserting the resilience layer absorbs every fault
// without changing mutator-observable semantics:
//
//	fuzzcheck -chaos -fault-seed 1 -fault-schedules 3
//
// Exit status is 1 when any divergence was found.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"beltway/internal/check"
	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/workload"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 50, "randomized script rounds after the workload stage")
		seed     = flag.Int64("seed", 1, "PRNG seed for scripts and random configurations")
		nConfigs = flag.Int("configs", 3, "random configurations added to the preset battery per round")
		minimize = flag.Bool("minimize", false, "shrink each divergence and write a reproducer fixture + regression test")
		scale    = flag.Float64("scale", 0.02, "workload scale for the trace stage")
		outDir   = flag.String("out", "internal/check", "check package directory for fixtures and generated tests")

		chaos          = flag.Bool("chaos", false, "run the chaos battery (fault injection) instead of the plain stages")
		faultSeed      = flag.Int64("fault-seed", 1, "chaos fault-schedule seed")
		faultSchedules = flag.Int("fault-schedules", 3, "fault schedules per script in chaos mode")
	)
	flag.Parse()

	presets, err := check.PresetConfigs()
	if err != nil {
		fatal(err)
	}
	failures := 0

	for _, path := range flag.Args() {
		failures += reproduceCorpusFile(path, presets, *minimize, *outDir)
	}
	if flag.NArg() > 0 {
		os.Exit(exitCode(failures))
	}

	if *chaos {
		os.Exit(exitCode(chaosStage(presets, *faultSeed, *faultSchedules, *rounds, *seed)))
	}

	failures += workloadStage(presets, *scale, *seed, *minimize, *outDir)
	failures += randomStage(presets, *rounds, *seed, *nConfigs, *minimize, *outDir)

	if failures == 0 {
		fmt.Printf("fuzzcheck: no divergences (%d presets, %d workloads, %d random rounds)\n",
			len(presets), len(workload.All()), *rounds)
	} else {
		fmt.Printf("fuzzcheck: %d divergent inputs\n", failures)
	}
	os.Exit(exitCode(failures))
}

func exitCode(failures int) int {
	if failures > 0 {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fuzzcheck:", err)
	os.Exit(2)
}

// workloadStage records each bundled benchmark at small scale and replays
// the trace through every preset, sized so completion is
// configuration-independent.
func workloadStage(presets []core.Config, scale float64, seed int64, minimize bool, outDir string) int {
	failures := 0
	recCfg, err := collectors.Parse("ss", collectors.Options{HeapBytes: 64 << 20, FrameBytes: check.OracleFrameBytes})
	if err != nil {
		fatal(err)
	}
	for _, b := range workload.All() {
		tr, err := check.RecordWorkload(b, scale, seed, recCfg)
		if err != nil {
			fatal(fmt.Errorf("recording %s: %w", b.Name, err))
		}
		alloc, err := tr.AllocBytes()
		if err != nil {
			fatal(err)
		}
		cfgs := sizeConfigs(presets, 3*alloc+64*check.OracleFrameBytes)
		rep := check.Differential(tr, cfgs)
		n, _ := tr.NumOps()
		if !rep.Failed() {
			fmt.Printf("workload %-10s %6d ops, %2d presets: ok\n", b.Name, n, len(cfgs))
			continue
		}
		failures++
		fmt.Printf("workload %-10s %6d ops: DIVERGES\n%s", b.Name, n, rep.String())
		if minimize {
			res := check.MinimizeTrace(tr, cfgs, check.DifferentialFails, 0)
			fmt.Printf("  minimized to %d ops, %d configs (%d evals)\n", res.Ops, len(res.Configs), res.Evals)
			fx, err := check.TraceFixture("workload-"+b.Name, "workload "+b.Name+" divergence", res.Trace, res.Configs)
			if err != nil {
				fatal(err)
			}
			writeFixture(fx, outDir)
		}
	}
	return failures
}

// randomStage fuzzes at the driver level: random scripts against the
// preset battery plus freshly randomized configurations.
func randomStage(presets []core.Config, rounds int, seed int64, nConfigs int, minimize bool, outDir string) int {
	failures := 0
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < rounds; round++ {
		raw := make([]byte, 4*(32+rng.Intn(480)))
		rng.Read(raw)
		script := check.DecodeScript(raw)
		cfgs := append([]core.Config(nil), presets...)
		for i := 0; i < nConfigs; i++ {
			cfgs = append(cfgs, check.RandomConfig(rng, 0, 0)) // sized by RunScript
		}
		run := check.RunScript(script, cfgs)
		if !run.Failed() {
			continue
		}
		failures++
		fmt.Printf("round %d (%d ops): DIVERGES\n%s", round, len(script), run.String())
		if minimize {
			minimizeScript(script, cfgs, outDir)
		}
	}
	return failures
}

// chaosStage runs the chaos battery: each seed script and `rounds`
// random scripts, executed under `schedules` deterministic fault
// schedules per preset, with outcomes compared to a fault-free baseline.
func chaosStage(presets []core.Config, faultSeed int64, schedules, rounds int, seed int64) int {
	failures := 0
	totalRounds, totalFired := 0, 0
	report := func(name string, run check.ChaosRun) {
		totalRounds += run.Rounds
		totalFired += run.TotalFired
		if run.Failed() {
			failures++
			fmt.Printf("chaos %-16s DIVERGES\n%s", name, run.String())
			return
		}
		fmt.Printf("chaos %-16s %4d rounds, %3d faults fired: ok\n", name, run.Rounds, run.TotalFired)
	}
	for _, s := range check.SeedScripts() {
		report("seed/"+s.Name, check.RunScriptChaos(s.Name, s.Script, presets, faultSeed, schedules))
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < rounds; round++ {
		raw := make([]byte, 4*(32+rng.Intn(480)))
		rng.Read(raw)
		name := fmt.Sprintf("rand/%d", round)
		report(name, check.RunScriptChaos(name, check.DecodeScript(raw), presets, faultSeed, schedules))
	}
	if totalFired == 0 {
		fmt.Fprintln(os.Stderr, "fuzzcheck: warning: no injected fault ever fired; battery tested nothing")
	}
	if failures == 0 {
		fmt.Printf("fuzzcheck: chaos clean (%d rounds, %d faults fired, %d schedules, seed %d)\n",
			totalRounds, totalFired, schedules, faultSeed)
	} else {
		fmt.Printf("fuzzcheck: chaos found %d divergent inputs\n", failures)
	}
	return failures
}

// reproduceCorpusFile replays one Go fuzz corpus entry (or a raw script
// byte file, or a fixture JSON) and optionally minimizes it.
func reproduceCorpusFile(path string, presets []core.Config, minimize bool, outDir string) int {
	if strings.HasSuffix(path, ".json") {
		fx, err := check.LoadFixture(path)
		if err != nil {
			fatal(err)
		}
		rep := fx.Run()
		if !rep.Failed() {
			fmt.Printf("%s: ok\n", path)
			return 0
		}
		fmt.Printf("%s: DIVERGES\n%s", path, rep.String())
		return 1
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	raw, cfgSeed, err := parseCorpusEntry(data)
	if err != nil {
		// Not a corpus entry: treat the bytes as a raw script encoding.
		raw, cfgSeed = data, 1
	}
	script := check.DecodeScript(raw)
	cfgs := []core.Config{presets[0], presets[1]}
	rng := rand.New(rand.NewSource(cfgSeed))
	for i := 0; i < 2; i++ {
		cfgs = append(cfgs, check.RandomConfig(rng, 0, 0))
	}
	run := check.RunScript(script, cfgs)
	if !run.Failed() {
		fmt.Printf("%s: ok (%d ops)\n", path, len(script))
		return 0
	}
	fmt.Printf("%s: DIVERGES (%d ops)\n%s", path, len(script), run.String())
	if minimize {
		minimizeScript(script, cfgs, outDir)
	}
	return 1
}

func minimizeScript(script check.Script, cfgs []core.Config, outDir string) {
	res := check.Minimize(script, cfgs, check.OracleFails, 0)
	fmt.Printf("  minimized to %d ops, %d configs (%d evals):\n%s",
		len(res.Script), len(res.Configs), res.Evals, res.Script)
	name := fmt.Sprintf("fuzzcheck-%x", sha256.Sum256(res.Script.Encode()))[:17]
	fx := check.ScriptFixture(name, "minimized by cmd/fuzzcheck", res.Script, res.Configs)
	writeFixture(fx, outDir)
}

func writeFixture(fx *check.Fixture, outDir string) {
	path, err := check.WriteFixture(fx, outDir+"/testdata")
	if err != nil {
		fatal(err)
	}
	testPath, err := check.WriteRegressionTest(fx.Name, outDir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s and %s\n", path, testPath)
}

// parseCorpusEntry decodes the two-argument "go test fuzz v1" corpus
// format used by FuzzDifferential: a []byte line and an int64 line.
func parseCorpusEntry(data []byte) ([]byte, int64, error) {
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, 0, fmt.Errorf("not a go fuzz corpus entry")
	}
	var raw []byte
	var cfgSeed int64 = 1
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "[]byte("):
			q := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			s, err := strconv.Unquote(q)
			if err != nil {
				return nil, 0, fmt.Errorf("bad []byte literal: %w", err)
			}
			raw = []byte(s)
		case strings.HasPrefix(line, "int64("):
			q := strings.TrimSuffix(strings.TrimPrefix(line, "int64("), ")")
			n, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("bad int64 literal: %w", err)
			}
			cfgSeed = n
		}
	}
	if raw == nil {
		return nil, 0, fmt.Errorf("corpus entry has no []byte argument")
	}
	return raw, cfgSeed, nil
}

// sizeConfigs applies one heap size (rounded up to frames) to every
// config in the battery.
func sizeConfigs(cfgs []core.Config, heapBytes int) []core.Config {
	fb := check.OracleFrameBytes
	heapBytes = (heapBytes + fb - 1) / fb * fb
	out := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		c.HeapBytes = heapBytes
		c.FrameBytes = fb
		c.PhysMemBytes = 0
		out[i] = c
	}
	return out
}
