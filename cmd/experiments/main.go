// Command experiments regenerates the tables and figures of "Beltway:
// Getting Around Garbage Collection Gridlock" (PLDI 2002).
//
// Usage:
//
//	experiments -exp fig9                # one experiment
//	experiments -exp all                 # everything, paper order
//	experiments -exp fig9 -points 9      # coarser sweep (faster)
//	experiments -exp table1 -scale 0.25  # smaller workloads
//	experiments -list                    # show available experiments
//
// Runs execute in parallel on a worker pool (-jobs, default GOMAXPROCS);
// every run is deterministic and independent, and results are reassembled
// in a fixed order, so the tables are byte-identical for any -jobs value.
// With -checkpoint FILE each completed run streams a JSONL record; a
// killed sweep rerun with -resume skips the runs the file already holds:
//
//	experiments -exp all -jobs 8 -checkpoint run.jsonl
//	experiments -exp all -jobs 8 -checkpoint run.jsonl -resume
//
// A diverging configuration can be bounded with -timeout (wall clock) or
// -budget (simulated seconds, deterministic); either records a failure
// for that run and the sweep continues.
//
// Output is a set of text tables, one data series per collector — the
// same rows/series the paper plots. Absolute "seconds" are nominal cost
// units; compare shapes, not magnitudes (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"

	"beltway/internal/engine"
	"beltway/internal/experiments"
	"beltway/internal/harness"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig1, fig5..fig11, all)")
		points   = flag.Int("points", 17, "heap sizes per sweep (paper used 33)")
		scale    = flag.Float64("scale", 1.0, "workload scale")
		seed     = flag.Int64("seed", workload.DefaultParams().Seed, "workload PRNG seed")
		frameKB  = flag.Int("frame", 0, "frame size in KB (power of two; 0 = auto from scale)")
		physMB   = flag.Int("physmem", -1, "modelled physical memory in MB (0 = no paging, -1 = auto)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		benchSel = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all six)")

		jobs = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"parallel runs (worker pool size); output is identical for any value")
		checkpoint = flag.String("checkpoint", "",
			"JSONL file streaming one record per completed run")
		resume = flag.Bool("resume", false,
			"load -checkpoint and skip runs it already holds (appends new records)")
		timeout = flag.Duration("timeout", 0,
			"per-run wall-clock budget (e.g. 30s; 0 = none); exceeded runs are recorded as failures")
		budget = flag.Float64("budget", 0,
			"per-run cost budget in nominal seconds of simulated time (0 = none); exceeded runs abort deterministically")
		degrade = flag.Bool("degrade", false,
			"enable the graceful-degradation ladder: emergency full-heap collection and one retry before any run reports OOM")
		mutators = flag.Int("mutators", 1,
			"mutator goroutines per run; >1 shards every run over N private heaps (default 1 = classic single-mutator tables)")
		faultSeed = flag.Int64("fault-seed", 0,
			"run every configuration under a deterministic fault-injection schedule derived from this seed (chaos testing; 0 = off)")
		slo = flag.String("slo", "",
			"request-latency SLO for -exp server, e.g. p99=10e3,p99.9=1e6,max=20e6 (cost units; default: the built-in bar)")
		adapt = flag.String("adapt", "",
			"run every measurement with the adaptive policy controller on this objective (slo | mmu | footprint | throughput; empty = static)")

		traceOut = flag.String("trace-out", "",
			"write a Chrome trace_event JSON of every run's GC events (open in chrome://tracing or Perfetto)")
		metricsOut = flag.String("metrics-out", "",
			"write aggregated metrics in Prometheus text exposition format")
		timelineOut = flag.String("timeline", "",
			"write an ASCII heap-composition timeline per run")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live aggregated metrics over HTTP at this address (e.g. :9090) while the sweep runs")
	)
	flag.Parse()
	if *resume && *checkpoint == "" {
		fatalf("-resume requires -checkpoint")
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-10s %s (extension; not in -exp all)\n", e.ID, e.Description)
		}
		return
	}

	env := harness.EnvForScale(*scale)
	env.Seed = *seed
	if *frameKB > 0 {
		env.FrameBytes = *frameKB * 1024
	}
	if *physMB >= 0 {
		env.PhysMemBytes = *physMB * 1024 * 1024
	}
	if *budget > 0 {
		env.CostBudget = *budget * stats.CyclesPerSecond
	}
	env.Degrade = *degrade
	env.FaultSeed = *faultSeed
	env.Mutators = *mutators
	env.Policy = *adapt
	if err := harness.ValidateEnv(env, false); err != nil {
		fatalf("%v", err)
	}

	// Telemetry: observability output goes to files (and the optional HTTP
	// endpoint), never stdout, so the printed tables stay byte-identical
	// with telemetry enabled or disabled.
	var obs *observer
	if *traceOut != "" || *metricsOut != "" || *timelineOut != "" || *metricsAddr != "" {
		env.Telemetry = true
		obs = newObserver()
		if *metricsAddr != "" {
			go func() {
				if err := http.ListenAndServe(*metricsAddr, obs.agg.Handler()); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: metrics endpoint: %v\n", err)
				}
			}()
		}
	}

	opts := experiments.Opts{
		Env:        env,
		Points:     *points,
		Jobs:       *jobs,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Timeout:    *timeout,
		ServerSLO:  *slo,
	}
	if *checkpoint != "" {
		// Bind checkpoint records to this build and configuration, so a
		// -resume against records from a different binary or parameter set
		// re-executes them (loudly) instead of silently reusing them.
		binHash, err := engine.BinaryHash()
		if err != nil {
			fatalf("hashing own binary: %v", err)
		}
		envJSON, err := json.Marshal(env)
		if err != nil {
			fatalf("fingerprinting env: %v", err)
		}
		opts.Fingerprint = engine.Fingerprint("experiments", binHash, string(envJSON),
			fmt.Sprint(*points), *benchSel, *slo)
	}
	if obs != nil {
		opts.OnRecord = obs.onRecord
	}
	if *benchSel != "" {
		for _, name := range strings.Split(*benchSel, ",") {
			b := workload.Get(strings.TrimSpace(name))
			if b == nil {
				fatalf("unknown benchmark %q (have: %s)", name, strings.Join(workload.Names(), ", "))
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	suite := experiments.New(opts)
	defer suite.Close()
	if *checkpoint != "" {
		// A killed sweep must leave a durable checkpoint: flush it on
		// SIGINT/SIGTERM, then die with the conventional signal status.
		stop := suite.Engine().FlushOnSignal(os.Interrupt, syscall.SIGTERM)
		defer stop()
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		e := experiments.Get(strings.TrimSpace(id))
		if e == nil {
			fatalf("unknown experiment %q (use -list)", id)
		}
		tables, err := e.Run(suite)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		for _, t := range tables {
			if *csvOut {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}

	if obs != nil {
		if *traceOut != "" {
			if err := obs.writeTrace(*traceOut); err != nil {
				fatalf("-trace-out: %v", err)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote Chrome trace to %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := obs.writeMetrics(*metricsOut); err != nil {
				fatalf("-metrics-out: %v", err)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote Prometheus metrics to %s\n", *metricsOut)
		}
		if *timelineOut != "" {
			if err := obs.writeTimelines(*timelineOut); err != nil {
				fatalf("-timeline: %v", err)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote heap timelines to %s\n", *timelineOut)
		}
	}
}

// observer aggregates telemetry from engine records as runs settle. Safe
// for concurrent use (records arrive from worker goroutines).
type observer struct {
	agg *telemetry.Aggregator

	mu   sync.Mutex
	runs map[string]observedRun // by engine key, deduplicated
}

type observedRun struct {
	name   string
	events []telemetry.Event
}

func newObserver() *observer {
	return &observer{agg: telemetry.NewAggregator(), runs: map[string]observedRun{}}
}

// onRecord decodes a settled engine record's payload and folds its
// telemetry into the aggregate. Records without telemetry (failures,
// resumed from a telemetry-less checkpoint) are skipped.
func (o *observer) onRecord(rec engine.Record) {
	if !rec.Outcome.Completed() || len(rec.Payload) == 0 {
		return
	}
	var p harness.RunPayload
	if err := json.Unmarshal(rec.Payload, &p); err != nil || p.Result == nil || p.Result.Telemetry == nil {
		return
	}
	key := rec.Key.String()
	o.mu.Lock()
	_, seen := o.runs[key]
	if !seen {
		o.runs[key] = observedRun{
			name: fmt.Sprintf("%s / %s @ %sMB", p.Result.Collector, p.Result.Benchmark,
				harness.FmtMB(p.Result.HeapBytes)),
			events: p.Result.Telemetry.Events,
		}
	}
	o.mu.Unlock()
	if !seen {
		o.agg.Add(p.Result.Collector, p.Result.Telemetry)
	}
}

// sortedRuns returns the observed runs ordered by key, so file output is
// deterministic regardless of completion order.
func (o *observer) sortedRuns() []observedRun {
	o.mu.Lock()
	defer o.mu.Unlock()
	keys := make([]string, 0, len(o.runs))
	for k := range o.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]observedRun, 0, len(keys))
	for _, k := range keys {
		out = append(out, o.runs[k])
	}
	return out
}

func (o *observer) writeTrace(path string) error {
	runs := o.sortedRuns()
	tr := make([]telemetry.TraceRun, len(runs))
	for i, r := range runs {
		tr[i] = telemetry.TraceRun{Name: r.name, Pid: i + 1, Events: r.events}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return telemetry.WriteChromeTrace(f, tr)
}

func (o *observer) writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return o.agg.WritePrometheus(f)
}

func (o *observer) writeTimelines(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, r := range o.sortedRuns() {
		if err := telemetry.WriteTimeline(f, r.name, r.events); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
