// Command experiments regenerates the tables and figures of "Beltway:
// Getting Around Garbage Collection Gridlock" (PLDI 2002).
//
// Usage:
//
//	experiments -exp fig9                # one experiment
//	experiments -exp all                 # everything, paper order
//	experiments -exp fig9 -points 9      # coarser sweep (faster)
//	experiments -exp table1 -scale 0.25  # smaller workloads
//	experiments -list                    # show available experiments
//
// Runs execute in parallel on a worker pool (-jobs, default GOMAXPROCS);
// every run is deterministic and independent, and results are reassembled
// in a fixed order, so the tables are byte-identical for any -jobs value.
// With -checkpoint FILE each completed run streams a JSONL record; a
// killed sweep rerun with -resume skips the runs the file already holds:
//
//	experiments -exp all -jobs 8 -checkpoint run.jsonl
//	experiments -exp all -jobs 8 -checkpoint run.jsonl -resume
//
// A diverging configuration can be bounded with -timeout (wall clock) or
// -budget (simulated seconds, deterministic); either records a failure
// for that run and the sweep continues.
//
// Output is a set of text tables, one data series per collector — the
// same rows/series the paper plots. Absolute "seconds" are nominal cost
// units; compare shapes, not magnitudes (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"beltway/internal/experiments"
	"beltway/internal/harness"
	"beltway/internal/stats"
	"beltway/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig1, fig5..fig11, all)")
		points   = flag.Int("points", 17, "heap sizes per sweep (paper used 33)")
		scale    = flag.Float64("scale", 1.0, "workload scale")
		seed     = flag.Int64("seed", workload.DefaultParams().Seed, "workload PRNG seed")
		frameKB  = flag.Int("frame", 0, "frame size in KB (power of two; 0 = auto from scale)")
		physMB   = flag.Int("physmem", -1, "modelled physical memory in MB (0 = no paging, -1 = auto)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		benchSel = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all six)")

		jobs = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"parallel runs (worker pool size); output is identical for any value")
		checkpoint = flag.String("checkpoint", "",
			"JSONL file streaming one record per completed run")
		resume = flag.Bool("resume", false,
			"load -checkpoint and skip runs it already holds (appends new records)")
		timeout = flag.Duration("timeout", 0,
			"per-run wall-clock budget (e.g. 30s; 0 = none); exceeded runs are recorded as failures")
		budget = flag.Float64("budget", 0,
			"per-run cost budget in nominal seconds of simulated time (0 = none); exceeded runs abort deterministically")
	)
	flag.Parse()
	if *resume && *checkpoint == "" {
		fatalf("-resume requires -checkpoint")
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	env := harness.EnvForScale(*scale)
	env.Seed = *seed
	if *frameKB > 0 {
		env.FrameBytes = *frameKB * 1024
	}
	if *physMB >= 0 {
		env.PhysMemBytes = *physMB * 1024 * 1024
	}
	if *budget > 0 {
		env.CostBudget = *budget * stats.CyclesPerSecond
	}

	opts := experiments.Opts{
		Env:        env,
		Points:     *points,
		Jobs:       *jobs,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Timeout:    *timeout,
	}
	if *benchSel != "" {
		for _, name := range strings.Split(*benchSel, ",") {
			b := workload.Get(strings.TrimSpace(name))
			if b == nil {
				fatalf("unknown benchmark %q (have: %s)", name, strings.Join(workload.Names(), ", "))
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	suite := experiments.New(opts)
	defer suite.Close()

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		e := experiments.Get(strings.TrimSpace(id))
		if e == nil {
			fatalf("unknown experiment %q (use -list)", id)
		}
		tables, err := e.Run(suite)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		for _, t := range tables {
			if *csvOut {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
