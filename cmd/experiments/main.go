// Command experiments regenerates the tables and figures of "Beltway:
// Getting Around Garbage Collection Gridlock" (PLDI 2002).
//
// Usage:
//
//	experiments -exp fig9                # one experiment
//	experiments -exp all                 # everything, paper order
//	experiments -exp fig9 -points 9      # coarser sweep (faster)
//	experiments -exp table1 -scale 0.25  # smaller workloads
//	experiments -list                    # show available experiments
//
// Output is a set of text tables, one data series per collector — the
// same rows/series the paper plots. Absolute "seconds" are nominal cost
// units; compare shapes, not magnitudes (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"beltway/internal/experiments"
	"beltway/internal/harness"
	"beltway/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig1, fig5..fig11, all)")
		points   = flag.Int("points", 17, "heap sizes per sweep (paper used 33)")
		scale    = flag.Float64("scale", 1.0, "workload scale")
		seed     = flag.Int64("seed", workload.DefaultParams().Seed, "workload PRNG seed")
		frameKB  = flag.Int("frame", 0, "frame size in KB (power of two; 0 = auto from scale)")
		physMB   = flag.Int("physmem", -1, "modelled physical memory in MB (0 = no paging, -1 = auto)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		benchSel = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all six)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	env := harness.EnvForScale(*scale)
	env.Seed = *seed
	if *frameKB > 0 {
		env.FrameBytes = *frameKB * 1024
	}
	if *physMB >= 0 {
		env.PhysMemBytes = *physMB * 1024 * 1024
	}

	opts := experiments.Opts{Env: env, Points: *points}
	if *benchSel != "" {
		for _, name := range strings.Split(*benchSel, ",") {
			b := workload.Get(strings.TrimSpace(name))
			if b == nil {
				fatalf("unknown benchmark %q (have: %s)", name, strings.Join(workload.Names(), ", "))
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	suite := experiments.New(opts)

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		e := experiments.Get(strings.TrimSpace(id))
		if e == nil {
			fatalf("unknown experiment %q (use -list)", id)
		}
		tables, err := e.Run(suite)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		for _, t := range tables {
			if *csvOut {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
