// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4). Each BenchmarkTable*/BenchmarkFigure* runs the
// corresponding experiment end to end — min-heap search, heap-size
// sweep, normalization — at a reduced scale so `go test -bench=.`
// completes in minutes; cmd/experiments runs the same code at full
// scale. Use -v to see the regenerated data tables.
//
// Within one `go test -bench` process the experiment suite's result
// cache is shared, so figures that reuse configurations (Appel appears
// in most) do not re-measure them; the first benchmark to run pays the
// min-heap search.
package beltway_test

import (
	"sync"
	"testing"

	"beltway/internal/experiments"
	"beltway/internal/harness"
)

var (
	suiteMu   sync.Mutex
	benchSuit *experiments.Suite
)

// benchScale and benchPoints trade fidelity for bench runtime; the paper
// used 33 heap sizes at full workload scale.
const (
	benchScale  = 0.25
	benchPoints = 9
)

func suite() *experiments.Suite {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if benchSuit == nil {
		env := harness.EnvForScale(benchScale)
		benchSuit = experiments.New(experiments.Opts{Env: env, Points: benchPoints})
	}
	return benchSuit
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiments.Get(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	s := suite()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: benchmark characteristics under
// the Appel-style collector (min heap, allocation volume, GC counts at
// small and large heaps).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1: Appel GC-time share (a) and
// total time relative to best (b) across heap sizes for all six
// benchmarks, including pseudojbb's paging at large heaps.
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure5 regenerates Figure 5: Appel vs Beltway 100.100 vs
// Beltway 100.100.100 — Beltway's Appel configuration performs like
// Appel, and a third generation alone wins nothing.
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates Figure 6: fixed-size nursery collectors
// (10/25/50/75%) vs the flexible-nursery Appel collector.
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Figure 7: Beltway X.X.100 increment-size
// sensitivity (X = 10, 25, 33, 50).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8: Beltway 25.25 (incomplete) vs
// Beltway 25.25.100 (complete) vs Appel.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Figure 9, the headline result: Beltway
// 25.25.100 vs Appel vs Fixed-25 geomean GC and total time.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates Figure 10: the Figure 9 trio per
// benchmark.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11 regenerates Figure 11: MMU curves for javac at two
// heap sizes across Appel and four Beltway configurations.
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkAblations measures the design-choice ablations DESIGN.md
// calls out: remsets vs cards vs boundary barrier, dynamic vs fixed
// reserve, nursery filter, the time-to-die trigger, and the
// completeness mechanism (none / third belt / MOS trains).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// BenchmarkMOSExtension sweeps the Mature Object Space configuration
// (the paper's §5 future work) against 25.25.100, 25.25 and Appel.
func BenchmarkMOSExtension(b *testing.B) { runExperiment(b, "mos") }
