module beltway

go 1.22
